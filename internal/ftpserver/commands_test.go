package ftpserver

import (
	"crypto/tls"
	"io"
	"strings"
	"testing"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

func TestTypeModeStru(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	for _, tt := range []struct {
		verb, arg string
		want      int
	}{
		{"TYPE", "I", ftp.CodeOK},
		{"TYPE", "A", ftp.CodeOK},
		{"TYPE", "X", ftp.CodeSyntaxError},
		{"MODE", "S", ftp.CodeOK},
		{"MODE", "B", ftp.CodeNotImplemented},
		{"STRU", "F", ftp.CodeOK},
		{"STRU", "R", ftp.CodeNotImplemented},
	} {
		r, err := c.Cmd(tt.verb, tt.arg)
		if err != nil || r.Code != tt.want {
			t.Errorf("%s %s = %+v (%v), want %d", tt.verb, tt.arg, r, err, tt.want)
		}
	}
}

func TestRestAndResumedRetr(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("REST", "6"); r.Code != ftp.CodePendingInfo {
		t.Fatalf("REST: %+v", r)
	}
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("RETR", "/pub/hello.txt"); !r.Preliminary() {
		t.Fatalf("RETR: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if string(body) != "world" {
		t.Errorf("resumed body = %q, want %q", body, "world")
	}
	c.ReadReply()
	if r, _ := c.Cmd("REST", "notanumber"); r.Code != ftp.CodeSyntaxError {
		t.Errorf("bad REST: %+v", r)
	}
	if r, _ := c.Cmd("REST", "-5"); r.Code != ftp.CodeSyntaxError {
		t.Errorf("negative REST: %+v", r)
	}
}

func TestRenameFlow(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("RNTO", "/x"); r.Code != ftp.CodeBadSequence {
		t.Fatalf("RNTO without RNFR: %+v", r)
	}
	if r, _ := c.Cmd("RNFR", "/nope"); r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("RNFR missing: %+v", r)
	}
	if r, _ := c.Cmd("RNFR", "/pub/hello.txt"); r.Code != ftp.CodePendingInfo {
		t.Fatalf("RNFR: %+v", r)
	}
	if r, _ := c.Cmd("RNTO", "/pub/renamed.txt"); r.Code != ftp.CodeFileOK {
		t.Fatalf("RNTO: %+v", r)
	}
	if cfg.FS.Lookup("/pub/renamed.txt") == nil || cfg.FS.Lookup("/pub/hello.txt") != nil {
		t.Error("rename did not move the file")
	}
}

func TestRenameDeniedReadOnly(t *testing.T) {
	env := newEnv(t, anonConfig()) // read-only
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("RNFR", "/pub/hello.txt"); r.Code != ftp.CodePendingInfo {
		t.Fatalf("RNFR: %+v", r)
	}
	if r, _ := c.Cmd("RNTO", "/pub/stolen.txt"); r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("read-only RNTO: %+v", r)
	}
}

func TestStatAbortSite(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	r, _ := c.Cmd("STAT", "")
	if r.Code != 211 || !strings.Contains(r.Text(), "anonymous") {
		t.Errorf("STAT: %+v", r)
	}
	if r, _ := c.Cmd("ABOR", ""); r.Code != ftp.CodeTransferOK {
		t.Errorf("ABOR: %+v", r)
	}
	// ProFTPD profile supports SITE HELP.
	if r, _ := c.Cmd("SITE", "HELP"); r.Code != ftp.CodeHelp {
		t.Errorf("SITE HELP: %+v", r)
	}
	if r, _ := c.Cmd("SITE", "CHMOD 777 x"); r.Code != ftp.CodeNotImplemented {
		t.Errorf("SITE CHMOD: %+v", r)
	}
}

func TestSiteUnsupported(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyVsftpd302) // no SiteHelp
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("SITE", "HELP"); r.Code != ftp.CodeNotImplemented {
		t.Errorf("SITE on vsftpd: %+v", r)
	}
}

func TestEPSVAndEPRT(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)

	r, err := c.Cmd("EPSV", "")
	if err != nil || r.Code != ftp.CodeExtendedPassive {
		t.Fatalf("EPSV: %+v %v", r, err)
	}
	port, err := ftp.ParseEPSVReply(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := env.nw.DialFrom(env.clientIP, env.serverIP, port)
	if err != nil {
		t.Fatalf("EPSV data dial: %v", err)
	}
	defer dc.Close()
	if r, _ := c.Cmd("RETR", "/pub/hello.txt"); !r.Preliminary() {
		t.Fatalf("RETR over EPSV: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if string(body) != "hello world" {
		t.Errorf("EPSV body: %q", body)
	}
	c.ReadReply()

	// EPRT with own address is accepted; with foreign address rejected.
	if r, _ := c.Cmd("EPRT", "|1|1.2.3.4|5000|"); r.Code != ftp.CodeOK {
		t.Errorf("EPRT own: %+v", r)
	}
	if r, _ := c.Cmd("EPRT", "|1|9.9.9.9|5000|"); r.Code != ftp.CodeCmdUnrecognized {
		t.Errorf("EPRT foreign: %+v", r)
	}
	for _, bad := range []string{"", "|2|::1|5000|", "|1|notanip|5000|", "|1|1.2.3.4|"} {
		if r, _ := c.Cmd("EPRT", bad); r.Code != ftp.CodeSyntaxError {
			t.Errorf("EPRT %q: %+v", bad, r)
		}
	}
}

func TestPBSZAndPROT(t *testing.T) {
	pool, err := certs.GeneratePool(8, []certs.Spec{{Name: "c", CommonName: "x", SelfSigned: true}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := anonConfig()
	cfg.Cert = pool.Get("c")
	env := newEnv(t, cfg)
	c, _ := env.dial(t)

	// PBSZ/PROT before the security exchange are rejected.
	if r, _ := c.Cmd("PBSZ", "0"); r.Code != ftp.CodeBadSequence {
		t.Errorf("PBSZ pre-TLS: %+v", r)
	}
	if r, _ := c.Cmd("PROT", "P"); r.Code != ftp.CodeBadSequence {
		t.Errorf("PROT pre-TLS: %+v", r)
	}

	if r, _ := c.Cmd("AUTH", "TLS"); r.Code != ftp.CodeAuthOK {
		t.Fatal("AUTH failed")
	}
	tc := tls.Client(c.NetConn(), &tls.Config{InsecureSkipVerify: true})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	c.Upgrade(tc)
	if r, _ := c.Cmd("PBSZ", "0"); r.Code != ftp.CodeOK {
		t.Errorf("PBSZ: %+v", r)
	}
	if r, _ := c.Cmd("PROT", "P"); r.Code != ftp.CodeOK {
		t.Errorf("PROT P: %+v", r)
	}
	if r, _ := c.Cmd("PROT", "S"); r.Code != ftp.CodeBadProtSetting {
		t.Errorf("PROT S: %+v", r)
	}
	// Double AUTH is a sequence error.
	if r, _ := c.Cmd("AUTH", "TLS"); r.Code != ftp.CodeBadSequence {
		t.Errorf("double AUTH: %+v", r)
	}
}

func TestAuthBadMechanism(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	if r, _ := c.Cmd("AUTH", "KERBEROS"); r.Code != ftp.CodeSyntaxError {
		t.Errorf("AUTH KERBEROS: %+v", r)
	}
}

func TestAppendBehavesLikeStor(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("APPE", "/incoming/log.txt"); !r.Preliminary() {
		t.Fatalf("APPE: %+v", r)
	}
	dc.Write([]byte("appended"))
	dc.Close()
	c.ReadReply()
	if cfg.FS.Lookup("/incoming/log.txt") == nil {
		t.Error("APPE did not create the file")
	}
}

func TestUserEdgeCases(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	if r, _ := c.Cmd("USER", ""); r.Code != ftp.CodeSyntaxError {
		t.Errorf("empty USER: %+v", r)
	}
	if r, _ := c.Cmd("PASS", "x"); r.Code != ftp.CodeBadSequence {
		t.Errorf("PASS before USER: %+v", r)
	}
	// "ftp" is the traditional anonymous alias.
	if r, _ := c.Cmd("USER", "ftp"); r.Code != ftp.CodeNeedPassword {
		t.Errorf("USER ftp: %+v", r)
	}
	if r, _ := c.Cmd("PASS", "x@y"); r.Code != ftp.CodeLoggedIn {
		t.Errorf("PASS for ftp alias: %+v", r)
	}
}

func TestListMissingDirectory(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	env.openPassive(t, c)
	if r, _ := c.Cmd("LIST", "/no/such/dir"); r.Code != ftp.CodeFileUnavailable {
		t.Errorf("LIST missing: %+v", r)
	}
}

func TestDataConnWithoutNegotiation(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("RETR", "/pub/hello.txt"); r.Code != ftp.CodeCantOpenData {
		t.Errorf("RETR without PASV/PORT: %+v", r)
	}
}

func TestXVariants(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("XPWD", ""); r.Code != ftp.CodePathCreated {
		t.Errorf("XPWD: %+v", r)
	}
	if r, _ := c.Cmd("XMKD", "/incoming/xdir"); r.Code != ftp.CodePathCreated {
		t.Errorf("XMKD: %+v", r)
	}
	if r, _ := c.Cmd("XRMD", "/incoming/xdir"); r.Code != ftp.CodeFileOK {
		t.Errorf("XRMD: %+v", r)
	}
	if r, _ := c.Cmd("XCUP", ""); r.Code != ftp.CodeFileOK {
		t.Errorf("XCUP: %+v", r)
	}
}

func TestMaxUploadBounded(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("STOR", "/incoming/big.bin"); !r.Preliminary() {
		t.Fatal("STOR refused")
	}
	// Stream more than maxUploadSize; the server must stop reading at
	// the cap rather than buffer unboundedly.
	chunk := make([]byte, 1<<20)
	for i := 0; i < 10; i++ {
		if _, err := dc.Write(chunk); err != nil {
			break // server stopped reading: acceptable
		}
	}
	dc.Close()
	c.ReadReply()
	node := cfg.FS.Lookup("/incoming/big.bin")
	if node == nil {
		t.Fatal("upload missing")
	}
	if node.Size > maxUploadSize {
		t.Errorf("stored %d bytes, cap %d", node.Size, maxUploadSize)
	}
}

func TestEPSVOnlySimNATAdvertisement(t *testing.T) {
	// PASV leak quirk must not break EPSV (port-only, no address).
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyQNAPNAS)
	cfg.InternalIP = simnet.MustParseIP("192.168.0.9")
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	r, _ := c.Cmd("EPSV", "")
	if r.Code != ftp.CodeExtendedPassive {
		t.Fatalf("EPSV: %+v", r)
	}
	port, err := ftp.ParseEPSVReply(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := env.nw.DialFrom(env.clientIP, env.serverIP, port)
	if err != nil {
		t.Fatalf("EPSV dial: %v", err)
	}
	dc.Close()
}
