package ftpserver

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

// fakeConn is a net.Conn stub recording Close for reaper tests.
type fakeConn struct {
	net.Conn
	mu     sync.Mutex
	closed bool
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *fakeConn) wasClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func TestGovernorCaps(t *testing.T) {
	g := NewGovernor(2, 0, 0)
	defer g.Close()
	a, ok := g.Acquire("1.1.1.1", &fakeConn{})
	if !ok {
		t.Fatal("first acquire refused")
	}
	if _, ok := g.Acquire("2.2.2.2", &fakeConn{}); !ok {
		t.Fatal("second acquire refused")
	}
	if _, ok := g.Acquire("3.3.3.3", &fakeConn{}); ok {
		t.Fatal("over-cap acquire admitted")
	}
	g.Release(a)
	if _, ok := g.Acquire("3.3.3.3", &fakeConn{}); !ok {
		t.Fatal("post-release acquire refused")
	}
	if got := g.Active(); got != 2 {
		t.Fatalf("Active = %d, want 2", got)
	}
}

func TestGovernorPerIPCap(t *testing.T) {
	g := NewGovernor(0, 1, 0)
	defer g.Close()
	a, ok := g.Acquire("9.9.9.9", &fakeConn{})
	if !ok {
		t.Fatal("first acquire refused")
	}
	if _, ok := g.Acquire("9.9.9.9", &fakeConn{}); ok {
		t.Fatal("same-IP second acquire admitted")
	}
	if _, ok := g.Acquire("8.8.8.8", &fakeConn{}); !ok {
		t.Fatal("other-IP acquire refused")
	}
	g.Release(a)
	if _, ok := g.Acquire("9.9.9.9", &fakeConn{}); !ok {
		t.Fatal("same-IP acquire after release refused")
	}
}

func TestGovernorReapsIdle(t *testing.T) {
	g := NewGovernor(10, 0, 20*time.Millisecond)
	defer g.Close()
	idle := &fakeConn{}
	busy := &fakeConn{}
	ics, ok := g.Acquire("1.1.1.1", idle)
	if !ok {
		t.Fatal("acquire refused")
	}
	bcs, ok := g.Acquire("2.2.2.2", busy)
	if !ok {
		t.Fatal("acquire refused")
	}
	_ = ics
	// Keep one session active past several idle windows; the other goes
	// quiet and must be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !idle.wasClosed() {
		bcs.touch()
		time.Sleep(5 * time.Millisecond)
	}
	if !idle.wasClosed() {
		t.Fatal("idle connection was not reaped")
	}
	if busy.wasClosed() {
		t.Fatal("active connection was reaped")
	}
}

func TestGovernorClosedRefuses(t *testing.T) {
	g := NewGovernor(10, 0, time.Minute)
	if _, ok := g.Acquire("1.1.1.1", &fakeConn{}); !ok {
		t.Fatal("acquire refused before close")
	}
	g.Close()
	if _, ok := g.Acquire("2.2.2.2", &fakeConn{}); ok {
		t.Fatal("closed governor admitted a connection")
	}
}

// governedEnv builds a simnet-backed server with connection caps.
func governedEnv(t *testing.T, mutate func(*Config)) (*testEnv, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             testFS(),
		HostName:       "gov.example.org",
		AllowAnonymous: true,
		Metrics:        reg,
	}
	mutate(&cfg)
	return newEnv(t, cfg), reg
}

// TestServerShedsOverCap drives a MaxConns=2 server: the third concurrent
// connection gets a 421 and the shed counter moves; a slot freed by QUIT is
// reusable.
func TestServerShedsOverCap(t *testing.T) {
	env, reg := governedEnv(t, func(cfg *Config) {
		cfg.MaxConns = 2
		cfg.IdleTimeout = time.Minute
	})

	c1, _ := env.dial(t)
	login(t, c1)
	c2, _ := env.dial(t)
	login(t, c2)

	// Over cap: the banner slot carries the 421 and the conn closes.
	c3, r := env.dial(t)
	if r.Code != ftp.CodeServiceNotAvail || !strings.Contains(r.Text(), "Too many connections") {
		t.Fatalf("shed banner = %+v, want 421", r)
	}
	if _, err := c3.ReadReply(); err == nil {
		t.Fatal("shed connection stayed open")
	}
	if got := reg.Counter("ftpserver.shed").Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Free a slot and verify admission recovers.
	if _, err := c1.Cmd("QUIT", ""); err != nil {
		t.Fatal(err)
	}
	ok := false
	for i := 0; i < 50; i++ { // the session goroutine releases async
		c4, r := env.dial(t)
		if r.Code == ftp.CodeReady {
			login(t, c4)
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("slot not reusable after QUIT")
	}
}

func TestServerPerIPCap(t *testing.T) {
	env, _ := governedEnv(t, func(cfg *Config) {
		cfg.MaxConnsPerIP = 1
		cfg.IdleTimeout = time.Minute
	})
	c1, _ := env.dial(t)
	login(t, c1)
	if _, r := env.dial(t); r.Code != ftp.CodeServiceNotAvail {
		t.Fatalf("same-IP second conn = %+v, want 421", r)
	}
	// A different source address is admitted.
	otherIP := simnet.MustParseIP("4.3.2.1")
	nc, err := env.nw.DialFrom(otherIP, env.serverIP, 21)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	if r, err := c.ReadReply(); err != nil || r.Code != ftp.CodeReady {
		t.Fatalf("other-IP banner: %v %v", r, err)
	}
}

// TestServerReapsIdleSession checks the governed idle path end to end: a
// session that goes quiet is torn down by the reaper (its blocked read
// fails), while a chatty one survives.
func TestServerReapsIdleSession(t *testing.T) {
	env, _ := governedEnv(t, func(cfg *Config) {
		cfg.MaxConns = 10
		cfg.IdleTimeout = 50 * time.Millisecond
	})
	idle, _ := env.dial(t)
	login(t, idle)
	busy, _ := env.dial(t)
	login(t, busy)

	// The idle conn must observe EOF/close within a few idle windows.
	done := make(chan error, 1)
	go func() {
		_, err := idle.ReadReply()
		done <- err
	}()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("idle session got a reply instead of teardown")
			}
			// The busy session is still serviceable.
			if r, err := busy.Cmd("NOOP", ""); err != nil || r.Code != ftp.CodeOK {
				t.Fatalf("busy session broken after reap: %v %v", r, err)
			}
			return
		case <-deadline:
			t.Fatal("idle session was not reaped")
		default:
			if r, err := busy.Cmd("NOOP", ""); err != nil || r.Code != ftp.CodeOK {
				t.Fatalf("busy NOOP: %v %v", r, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestTokenBucketTake(t *testing.T) {
	b := NewTokenBucket(1000, 1000)
	if w := b.Take(1000); w != 0 {
		t.Fatalf("burst take waited %v", w)
	}
	// The bucket is now empty: 500 more tokens ≈ 500ms of debt.
	w := b.Take(500)
	if w < 400*time.Millisecond || w > 600*time.Millisecond {
		t.Fatalf("debt wait = %v, want ~500ms", w)
	}
	// Unlimited and nil buckets never wait.
	if w := NewTokenBucket(0, 10).Take(1 << 30); w != 0 {
		t.Fatalf("unlimited bucket waited %v", w)
	}
	var nilBucket *TokenBucket
	if w := nilBucket.Take(100); w != 0 {
		t.Fatalf("nil bucket waited %v", w)
	}
	if !nilBucket.TryTake(100) {
		t.Fatal("nil bucket refused TryTake")
	}
}

func TestTokenBucketTryTake(t *testing.T) {
	b := NewTokenBucket(10, 5)
	if !b.TryTake(5) {
		t.Fatal("burst TryTake refused")
	}
	if b.TryTake(1) {
		t.Fatal("empty bucket granted TryTake")
	}
	time.Sleep(200 * time.Millisecond) // ~2 tokens refill
	if !b.TryTake(1) {
		t.Fatal("refilled bucket refused TryTake")
	}
}

// TestServerBandwidthShaping transfers a file through a tightly shaped
// session and checks the transfer takes at least the shaped duration.
func TestServerBandwidthShaping(t *testing.T) {
	env, _ := governedEnv(t, func(cfg *Config) {
		cfg.MaxConns = 4
		cfg.IdleTimeout = time.Minute
		cfg.AnonWritable = true
		cfg.BandwidthPerSession = 64 << 10 // burst = rate = 64KiB
	})
	c, _ := env.dial(t)
	login(t, c)

	// 128 KiB at 64 KiB/s with a 64 KiB burst ⇒ ≥ ~1s of induced sleep.
	dc := env.openPassive(t, c)
	r, err := c.Cmd("STOR", "/incoming/pad.bin")
	if err != nil || r.Code != ftp.CodeDataOpen {
		t.Fatalf("STOR: %v %v", r, err)
	}
	start := time.Now()
	if _, err := dc.Write(make([]byte, 128<<10)); err != nil {
		t.Fatal(err)
	}
	dc.Close()
	if r, err := c.ReadReply(); err != nil || r.Code != ftp.CodeTransferOK {
		t.Fatalf("STOR completion: %v %v", r, err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("shaped 128KiB upload finished in %v, want ≥500ms", elapsed)
	}
}
