package ftpserver

import (
	"io"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

// TestClassicBounceAttackRelay reproduces §VII.B's combined attack: on a
// server that is both world-writable and PORT-unvalidated, an attacker
// uploads a file containing protocol commands and then bounces it to a
// third-party service — coercing the FTP server into speaking SMTP at a
// victim.
func TestClassicBounceAttackRelay(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyHostedHomePL) // no PORT validation
	cfg.AnonWritable = true
	env := newEnv(t, cfg)

	// The "victim" SMTP service on a third-party address.
	victim := simnet.MustParseIP("203.0.113.25")
	l, err := env.nw.Listen(victim, 25)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	received := make(chan string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		body, _ := io.ReadAll(conn)
		received <- string(body)
	}()

	c, _ := env.dial(t)
	login(t, c)

	// Step 1: upload the command script.
	script := "HELO attacker.example\r\nMAIL FROM:<spam@attacker.example>\r\nRCPT TO:<victim@example.org>\r\n"
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("STOR", "/smtp-cmds.txt"); !r.Preliminary() {
		t.Fatal("STOR refused")
	}
	dc.Write([]byte(script))
	dc.Close()
	c.ReadReply()

	// Step 2: PORT to the victim's SMTP port and RETR the script.
	hp := ftp.HostPort{IP: victim.Octets(), Port: 25}
	if r, _ := c.Cmd("PORT", hp.Encode()); r.Code != ftp.CodeOK {
		t.Fatalf("PORT to victim rejected: %+v", r)
	}
	if r, _ := c.Cmd("RETR", "/smtp-cmds.txt"); !r.Preliminary() {
		t.Fatalf("RETR bounce refused: %+v", r)
	}
	if r, _ := c.ReadReply(); r.Code != ftp.CodeTransferOK {
		t.Fatalf("bounce completion: %+v", r)
	}

	select {
	case got := <-received:
		if !strings.Contains(got, "MAIL FROM:<spam@attacker.example>") {
			t.Errorf("victim received %q", got)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("victim SMTP service never contacted")
	}
}

// TestBounceAttackBlockedByValidation shows the same attack failing against
// an implementation that validates PORT arguments.
func TestBounceAttackBlockedByValidation(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true // writable, but ProFTPD validates PORT
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	hp := ftp.HostPort{IP: [4]byte{203, 0, 113, 25}, Port: 25}
	if r, _ := c.Cmd("PORT", hp.Encode()); r.Code != ftp.CodeCmdUnrecognized {
		t.Fatalf("validating server accepted third-party PORT: %+v", r)
	}
}
