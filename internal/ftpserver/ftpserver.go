// Package ftpserver implements the FTP server engine that impersonates
// real-world implementations in the simulated Internet. One engine drives
// every personality: the profile supplies banners, reply texts, feature
// lists, and quirks, while per-host configuration supplies the filesystem,
// anonymous-access policy, NAT posture, and FTPS certificate.
//
// The engine serves both simulated connections (via SimHandler) and real TCP
// sockets (via ServeTCP, used by cmd/ftpserved for interop testing), so the
// enumerator can be validated against the same code over a real network.
package ftpserver

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// AnonymousUser is the RFC 1635 anonymous login name; "ftp" is the
// traditional alias.
const AnonymousUser = "anonymous"

// Config describes one FTP host.
type Config struct {
	// Pers selects the implementation profile. Required.
	Pers *personality.Personality
	// FS is the filesystem served to clients. Required.
	FS *vfs.FS
	// HostName substitutes %HOST% in banners.
	HostName string
	// PublicIP is the host's routable address: the source of outbound
	// (active-mode) connections and, absent the NAT-leak quirk, the
	// address advertised in PASV replies.
	PublicIP simnet.IP
	// InternalIP, when nonzero, is the RFC 1918 address a NAT-ed device
	// leaks in PASV replies if its personality has the leak quirk.
	InternalIP simnet.IP
	// AllowAnonymous permits RFC 1635 anonymous logins.
	AllowAnonymous bool
	// AnonWritable additionally lets the anonymous user STOR/MKD/DELE.
	AnonWritable bool
	// Users maps additional usernames to passwords (honeypots use weak
	// credentials here).
	Users map[string]string
	// Cert enables AUTH TLS when non-nil.
	Cert *certs.Cert
	// RequireTLS refuses logins until the connection is upgraded.
	RequireTLS bool
	// RequestLimit, when positive, terminates the session with a 421
	// after that many commands — servers in the wild cap crawlers this
	// way, and the enumerator must treat it as refusal of service.
	RequestLimit int
	// IdleTimeout bounds each control-channel read; zero means the
	// engine default of 60s.
	IdleTimeout time.Duration
	// Observer, when non-nil, receives session events (honeypots record
	// through this hook).
	Observer Observer
}

// Observer receives wire-level session events.
type Observer interface {
	// Event is called for each notable session event.
	Event(e Event)
}

// EventKind classifies observer events.
type EventKind int

// Observer event kinds.
const (
	EventConnect EventKind = iota + 1
	EventCommand
	EventLoginOK
	EventLoginFail
	EventUpload
	EventDownload
	EventPortBounceAttempt
	EventTLSHandshake
	EventDisconnect
)

// Event is one observed session action.
type Event struct {
	Kind     EventKind
	RemoteIP string
	Command  string // verb for EventCommand
	Arg      string
	User     string
	Pass     string
	Path     string
	Detail   string
	Time     time.Time
}

// Server is an immutable host definition; each connection gets a session.
type Server struct {
	cfg Config
}

// New validates the configuration and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Pers == nil {
		return nil, errors.New("ftpserver: config needs a personality")
	}
	if cfg.FS == nil {
		return nil, errors.New("ftpserver: config needs a filesystem")
	}
	if cfg.RequireTLS && cfg.Cert == nil {
		return nil, errors.New("ftpserver: RequireTLS without a certificate")
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.Pers.Quirks.CaseInsensitive {
		cfg.FS.CaseInsensitive = true
	}
	return &Server{cfg: cfg}, nil
}

// transport abstracts how data channels are established, so the same engine
// serves simulated and real TCP networks.
type transport interface {
	// ListenPASV opens a data listener and returns it with the host-port
	// to advertise in the 227 reply.
	ListenPASV() (net.Listener, ftp.HostPort, error)
	// DialPORT connects to an active-mode target.
	DialPORT(hp ftp.HostPort) (net.Conn, error)
}

// simTransport runs data channels over the simulated network.
type simTransport struct {
	nw  *simnet.Network
	cfg *Config
}

func (t simTransport) ListenPASV() (net.Listener, ftp.HostPort, error) {
	l, err := t.nw.Listen(t.cfg.PublicIP, 0)
	if err != nil {
		return nil, ftp.HostPort{}, err
	}
	addr := l.Addr().(simnet.Addr)
	advertised := t.cfg.PublicIP
	if t.cfg.Pers.Quirks.PASVLeaksInternalIP && t.cfg.InternalIP != 0 {
		advertised = t.cfg.InternalIP
	}
	return l, ftp.HostPort{IP: advertised.Octets(), Port: addr.Port}, nil
}

func (t simTransport) DialPORT(hp ftp.HostPort) (net.Conn, error) {
	ip := simnet.IPFromOctets(hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3])
	return t.nw.DialFrom(t.cfg.PublicIP, ip, hp.Port)
}

// tcpTransport runs data channels over the real network.
type tcpTransport struct {
	localIP net.IP
}

func (t tcpTransport) ListenPASV() (net.Listener, ftp.HostPort, error) {
	l, err := net.Listen("tcp", net.JoinHostPort(t.localIP.String(), "0"))
	if err != nil {
		return nil, ftp.HostPort{}, err
	}
	hp, err := ftp.HostPortFromAddr(l.Addr().String())
	if err != nil {
		l.Close()
		return nil, ftp.HostPort{}, err
	}
	return l, hp, nil
}

func (t tcpTransport) DialPORT(hp ftp.HostPort) (net.Conn, error) {
	return net.DialTimeout("tcp", hp.Addr(), 5*time.Second)
}

// SimHandler adapts the server to the simulated network.
func (s *Server) SimHandler() simnet.Handler {
	return simnet.HandlerFunc(func(nw *simnet.Network, conn net.Conn) {
		s.serve(conn, simTransport{nw: nw, cfg: &s.cfg})
	})
}

// ServeTCP serves one real TCP connection (cmd/ftpserved).
func (s *Server) ServeTCP(conn net.Conn) {
	localIP := net.IPv4(127, 0, 0, 1)
	if ta, ok := conn.LocalAddr().(*net.TCPAddr); ok {
		localIP = ta.IP
	}
	s.serve(conn, tcpTransport{localIP: localIP})
}

// session is per-connection state.
type session struct {
	srv   *Server
	cfg   *Config
	conn  *ftp.Conn
	trans transport

	remoteIP   string
	user       string // pending USER argument
	authedUser string // non-empty after successful login
	anonymous  bool
	cwd        string
	tlsActive  bool
	restOffset int64
	renameFrom string

	pasvListener net.Listener
	pasvAddr     ftp.HostPort
	portTarget   *ftp.HostPort

	requests int
}

func (s *Server) serve(nc net.Conn, trans transport) {
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = s.cfg.IdleTimeout

	remoteIP := ""
	if host, _, err := net.SplitHostPort(nc.RemoteAddr().String()); err == nil {
		remoteIP = host
	}
	sess := &session{
		srv:      s,
		cfg:      &s.cfg,
		conn:     c,
		trans:    trans,
		remoteIP: remoteIP,
		cwd:      "/",
	}
	defer sess.closeData()
	sess.observe(Event{Kind: EventConnect})
	defer sess.observe(Event{Kind: EventDisconnect})

	banner := s.cfg.Pers.ExpandBanner(remoteIP0(&s.cfg), s.cfg.HostName)
	if err := c.SendReply(ftp.NewReply(ftp.CodeReady, strings.Split(banner, "\n")...)); err != nil {
		return
	}

	for {
		cmd, err := c.ReadCommand()
		if err != nil {
			return
		}
		sess.requests++
		sess.observe(Event{Kind: EventCommand, Command: cmd.Name, Arg: cmd.Arg})
		if s.cfg.RequestLimit > 0 && sess.requests > s.cfg.RequestLimit {
			c.SendReply(ftp.Replyf(ftp.CodeServiceNotAvail, "Too many requests; closing control connection."))
			return
		}
		if done := sess.dispatch(cmd); done {
			return
		}
	}
}

// remoteIP0 yields the address embedded in %IP% banners: NAT-ed devices show
// their internal address (the paper's private-banner-IP observation), others
// their public one.
func remoteIP0(cfg *Config) string {
	if cfg.InternalIP != 0 {
		return cfg.InternalIP.String()
	}
	return cfg.PublicIP.String()
}

func (s *session) observe(e Event) {
	if s.cfg.Observer == nil {
		return
	}
	e.RemoteIP = s.remoteIP
	if e.User == "" {
		e.User = s.authedUser
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	s.cfg.Observer.Event(e)
}

func (s *session) reply(r ftp.Reply) bool {
	return s.conn.SendReply(r) != nil
}

// dispatch executes one command; the return value reports session end.
func (s *session) dispatch(cmd ftp.Command) bool {
	switch cmd.Name {
	case "QUIT":
		s.reply(ftp.Replyf(ftp.CodeClosing, "Goodbye."))
		return true
	case "USER":
		return s.cmdUser(cmd.Arg)
	case "PASS":
		return s.cmdPass(cmd.Arg)
	case "AUTH":
		return s.cmdAuth(cmd.Arg)
	case "FEAT":
		return s.cmdFeat()
	case "SYST":
		return s.reply(ftp.Replyf(ftp.CodeSystem, "%s", s.cfg.Pers.Syst))
	case "NOOP":
		return s.reply(ftp.Replyf(ftp.CodeOK, "NOOP command successful"))
	case "HELP":
		return s.cmdHelp()
	case "PBSZ":
		if !s.tlsActive {
			return s.reply(ftp.Replyf(ftp.CodeBadSequence, "PBSZ requires a security exchange."))
		}
		return s.reply(ftp.Replyf(ftp.CodeOK, "PBSZ 0 successful"))
	case "PROT":
		if !s.tlsActive {
			return s.reply(ftp.Replyf(ftp.CodeBadSequence, "PROT requires a security exchange."))
		}
		if strings.EqualFold(cmd.Arg, "P") || strings.EqualFold(cmd.Arg, "C") {
			return s.reply(ftp.Replyf(ftp.CodeOK, "Protection level set to %s", strings.ToUpper(cmd.Arg)))
		}
		return s.reply(ftp.Replyf(ftp.CodeBadProtSetting, "Unsupported protection level"))
	}

	if s.authedUser == "" {
		return s.reply(ftp.Replyf(ftp.CodeNotLoggedIn, "Please login with USER and PASS."))
	}

	switch cmd.Name {
	case "PWD", "XPWD":
		return s.reply(ftp.Replyf(ftp.CodePathCreated, "%q is the current directory", s.cwd))
	case "CWD":
		return s.cmdCwd(cmd.Arg)
	case "CDUP", "XCUP":
		return s.cmdCwd("..")
	case "TYPE":
		switch strings.ToUpper(cmd.Arg) {
		case "A", "I", "A N", "L 8":
			return s.reply(ftp.Replyf(ftp.CodeOK, "Type set to %s", strings.ToUpper(cmd.Arg)))
		default:
			return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Unrecognized TYPE argument"))
		}
	case "MODE":
		if strings.EqualFold(cmd.Arg, "S") {
			return s.reply(ftp.Replyf(ftp.CodeOK, "Mode set to S"))
		}
		return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "Unsupported MODE"))
	case "STRU":
		if strings.EqualFold(cmd.Arg, "F") {
			return s.reply(ftp.Replyf(ftp.CodeOK, "Structure set to F"))
		}
		return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "Unsupported STRU"))
	case "PASV":
		return s.cmdPasv()
	case "EPSV":
		return s.cmdEpsv()
	case "PORT":
		return s.cmdPort(cmd.Arg)
	case "EPRT":
		return s.cmdEprt(cmd.Arg)
	case "LIST":
		return s.cmdList(cmd.Arg, listStyleDefault)
	case "NLST":
		return s.cmdList(cmd.Arg, listStyleNames)
	case "MLSD":
		if !s.supportsMLSx() {
			return s.reply(ftp.Replyf(ftp.CodeCmdUnrecognized, "MLSD not understood"))
		}
		return s.cmdList(cmd.Arg, listStyleMLSD)
	case "MLST":
		return s.cmdMlst(cmd.Arg)
	case "RETR":
		return s.cmdRetr(cmd.Arg)
	case "STOR":
		return s.cmdStor(cmd.Arg)
	case "APPE":
		return s.cmdStor(cmd.Arg)
	case "DELE":
		return s.cmdDele(cmd.Arg)
	case "MKD", "XMKD":
		return s.cmdMkd(cmd.Arg)
	case "RMD", "XRMD":
		return s.cmdRmd(cmd.Arg)
	case "RNFR":
		return s.cmdRnfr(cmd.Arg)
	case "RNTO":
		return s.cmdRnto(cmd.Arg)
	case "SIZE":
		return s.cmdSize(cmd.Arg)
	case "MDTM":
		return s.cmdMdtm(cmd.Arg)
	case "REST":
		return s.cmdRest(cmd.Arg)
	case "ABOR":
		s.closeData()
		return s.reply(ftp.Replyf(ftp.CodeTransferOK, "ABOR command successful"))
	case "STAT":
		return s.cmdStat()
	case "SITE":
		return s.cmdSite(cmd.Arg)
	default:
		return s.reply(ftp.Replyf(ftp.CodeCmdUnrecognized, "%s not understood", cmd.Name))
	}
}

func (s *session) cmdUser(arg string) bool {
	if arg == "" {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "USER: command requires a parameter"))
	}
	if s.cfg.RequireTLS && !s.tlsActive {
		return s.reply(ftp.Replyf(ftp.CodeNotLoggedIn,
			"This server does not allow plain FTP. You have to use FTP over TLS."))
	}
	lower := strings.ToLower(arg)
	if (lower == AnonymousUser || lower == "ftp") && !s.cfg.AllowAnonymous {
		s.observe(Event{Kind: EventLoginFail, Detail: "anonymous denied", Pass: ""})
		return s.reply(ftp.Replyf(ftp.CodeNotLoggedIn, "Anonymous access denied."))
	}
	s.user = arg
	return s.reply(ftp.Replyf(ftp.CodeNeedPassword, "%s", s.cfg.Pers.Expand331(arg)))
}

func (s *session) cmdPass(arg string) bool {
	if s.user == "" {
		return s.reply(ftp.Replyf(ftp.CodeBadSequence, "Login with USER first."))
	}
	lower := strings.ToLower(s.user)
	if lower == AnonymousUser || lower == "ftp" {
		// RFC 1635: any password is accepted for the anonymous user.
		s.authedUser = AnonymousUser
		s.anonymous = true
		s.observe(Event{Kind: EventLoginOK, Pass: arg, Detail: "anonymous"})
		return s.reply(ftp.Replyf(ftp.CodeLoggedIn,
			"Anonymous access granted, restrictions apply"))
	}
	if want, ok := s.cfg.Users[s.user]; ok && want == arg {
		s.authedUser = s.user
		s.observe(Event{Kind: EventLoginOK, Pass: arg})
		return s.reply(ftp.Replyf(ftp.CodeLoggedIn, "User %s logged in", s.user))
	}
	s.observe(Event{Kind: EventLoginFail, User: s.user, Pass: arg})
	s.user = ""
	return s.reply(ftp.Replyf(ftp.CodeNotLoggedIn, "Login incorrect."))
}

func (s *session) cmdAuth(arg string) bool {
	mech := strings.ToUpper(strings.TrimSpace(arg))
	if mech != "TLS" && mech != "SSL" {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Unknown AUTH mechanism %s", arg))
	}
	if s.cfg.Cert == nil || !s.cfg.Pers.Quirks.SupportsFTPS {
		return s.reply(ftp.Replyf(ftp.CodeTLSNotAvailable, "AUTH %s not available", mech))
	}
	if s.tlsActive {
		return s.reply(ftp.Replyf(ftp.CodeBadSequence, "Already in TLS mode"))
	}
	if s.reply(ftp.Replyf(ftp.CodeAuthOK, "AUTH %s successful", mech)) {
		return true
	}
	tc := tls.Server(s.conn.NetConn(), &tls.Config{
		Certificates: []tls.Certificate{s.cfg.Cert.TLSCertificate()},
		MinVersion:   tls.VersionTLS12,
	})
	if err := tc.Handshake(); err != nil {
		return true
	}
	s.conn.Upgrade(tc)
	s.tlsActive = true
	s.observe(Event{Kind: EventTLSHandshake})
	return false
}

func (s *session) cmdFeat() bool {
	if len(s.cfg.Pers.Features) == 0 {
		return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "FEAT not supported"))
	}
	lines := make([]string, 0, len(s.cfg.Pers.Features)+2)
	lines = append(lines, "Features:")
	lines = append(lines, s.cfg.Pers.Features...)
	lines = append(lines, "End")
	return s.reply(ftp.NewReply(ftp.FeatureListCode, lines...))
}

func (s *session) cmdHelp() bool {
	lines := s.cfg.Pers.HelpLines
	if len(lines) == 0 {
		lines = []string{"Help OK"}
	}
	return s.reply(ftp.NewReply(ftp.CodeHelp, lines...))
}

func (s *session) cmdSite(arg string) bool {
	if len(s.cfg.Pers.SiteHelp) == 0 {
		return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "SITE not understood"))
	}
	sub := strings.ToUpper(strings.TrimSpace(arg))
	if sub == "HELP" || sub == "" {
		lines := append([]string{"The following SITE commands are recognized:"}, s.cfg.Pers.SiteHelp...)
		return s.reply(ftp.NewReply(ftp.CodeHelp, append(lines, "End")...))
	}
	return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "SITE %s not understood", sub))
}

func (s *session) cmdCwd(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	node := s.cfg.FS.Lookup(target)
	if node == nil || !node.IsDir {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	s.cwd = target
	return s.reply(ftp.Replyf(ftp.CodeFileOK, "CWD command successful"))
}

func (s *session) cmdPasv() bool {
	if s.cfg.Pers.Quirks.EPSVOnly {
		return s.reply(ftp.Replyf(ftp.CodeNotImplemented, "PASV not supported; use EPSV"))
	}
	s.closeData()
	l, hp, err := s.trans.ListenPASV()
	if err != nil {
		return s.reply(ftp.Replyf(ftp.CodeCantOpenData, "Cannot open passive connection"))
	}
	s.pasvListener = l
	s.pasvAddr = hp
	return s.reply(ftp.Replyf(ftp.CodePassive, "%s", ftp.FormatPASVReply(hp)))
}

func (s *session) cmdEpsv() bool {
	s.closeData()
	l, hp, err := s.trans.ListenPASV()
	if err != nil {
		return s.reply(ftp.Replyf(ftp.CodeCantOpenData, "Cannot open passive connection"))
	}
	s.pasvListener = l
	s.pasvAddr = hp
	return s.reply(ftp.Replyf(ftp.CodeExtendedPassive, "%s", ftp.FormatEPSVReply(hp.Port)))
}

func (s *session) cmdPort(arg string) bool {
	hp, err := ftp.ParseHostPort(arg)
	if err != nil {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Illegal PORT command"))
	}
	return s.setPortTarget(hp)
}

func (s *session) cmdEprt(arg string) bool {
	// |1|ip|port|
	if len(arg) == 0 {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Illegal EPRT command"))
	}
	fields := strings.Split(arg, string(arg[0]))
	if len(fields) != 5 || fields[1] != "1" {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Illegal EPRT command"))
	}
	hp, err := ftp.HostPortFromAddr(net.JoinHostPort(fields[2], fields[3]))
	if err != nil {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "Illegal EPRT command"))
	}
	return s.setPortTarget(hp)
}

func (s *session) setPortTarget(hp ftp.HostPort) bool {
	if hp.IPString() != s.remoteIP {
		s.observe(Event{Kind: EventPortBounceAttempt, Detail: hp.Addr()})
		if s.cfg.Pers.Quirks.ValidatePORT {
			return s.reply(ftp.Replyf(ftp.CodeCmdUnrecognized,
				"Illegal PORT command: address mismatch"))
		}
	}
	s.closeData()
	s.portTarget = &hp
	return s.reply(ftp.Replyf(ftp.CodeOK, "PORT command successful"))
}

// openData establishes the data connection negotiated by PASV or PORT.
func (s *session) openData() (net.Conn, error) {
	if s.pasvListener != nil {
		l := s.pasvListener
		type result struct {
			conn net.Conn
			err  error
		}
		ch := make(chan result, 1)
		go func() {
			c, err := l.Accept()
			ch <- result{conn: c, err: err}
		}()
		select {
		case r := <-ch:
			return r.conn, r.err
		case <-time.After(5 * time.Second):
			l.Close()
			return nil, errors.New("ftpserver: passive accept timeout")
		}
	}
	if s.portTarget != nil {
		return s.trans.DialPORT(*s.portTarget)
	}
	return nil, errors.New("ftpserver: no data connection negotiated")
}

func (s *session) closeData() {
	if s.pasvListener != nil {
		s.pasvListener.Close()
		s.pasvListener = nil
	}
	s.portTarget = nil
}

// withDataConn runs fn over an established data connection, bracketing it
// with the 150/226 replies.
func (s *session) withDataConn(openingMsg string, fn func(dc net.Conn) error) bool {
	dc, err := s.openData()
	if err != nil {
		s.closeData()
		return s.reply(ftp.Replyf(ftp.CodeCantOpenData, "Can't open data connection"))
	}
	defer func() {
		dc.Close()
		s.closeData()
	}()
	if s.reply(ftp.Replyf(ftp.CodeDataOpen, "%s", openingMsg)) {
		return true
	}
	dc.SetDeadline(time.Now().Add(30 * time.Second))
	if err := fn(dc); err != nil {
		return s.reply(ftp.Replyf(ftp.CodeTransferAborted, "Transfer aborted"))
	}
	return s.reply(ftp.Replyf(ftp.CodeTransferOK, "Transfer complete"))
}

// listStyle selects the LIST-family response body.
type listStyle int

const (
	listStyleDefault listStyle = iota
	listStyleNames
	listStyleMLSD
)

// supportsMLSx reports whether the personality advertises RFC 3659
// machine-readable listings in its FEAT body.
func (s *session) supportsMLSx() bool {
	for _, f := range s.cfg.Pers.Features {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(f)), "MLST") {
			return true
		}
	}
	return false
}

func (s *session) cmdList(arg string, style listStyle) bool {
	// Strip ls-style flags ("-la", "-al /pub", ...).
	path := strings.TrimSpace(arg)
	for strings.HasPrefix(path, "-") {
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = strings.TrimSpace(path[i+1:])
		} else {
			path = ""
		}
	}
	target := s.cwd
	if path != "" {
		target = vfs.Join(s.cwd, path)
	}
	entries, err := s.cfg.FS.List(target)
	if err != nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", path))
	}
	var body string
	switch style {
	case listStyleNames:
		body = vfs.FormatNameList(entries)
	case listStyleMLSD:
		body = vfs.FormatMLSDListing(entries, time.Now())
	default:
		body = vfs.FormatListing(entries, s.cfg.Pers.Quirks.ListStyle, time.Now())
	}
	return s.withDataConn("Opening ASCII mode data connection for file list", func(dc net.Conn) error {
		_, err := io.WriteString(dc, body)
		return err
	})
}

// cmdMlst returns machine-readable facts for one path on the control
// channel (RFC 3659 §7.3).
func (s *session) cmdMlst(arg string) bool {
	if !s.supportsMLSx() {
		return s.reply(ftp.Replyf(ftp.CodeCmdUnrecognized, "MLST not understood"))
	}
	target := s.cwd
	if strings.TrimSpace(arg) != "" {
		target = vfs.Join(s.cwd, arg)
	}
	node := s.cfg.FS.Lookup(target)
	if node == nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	return s.reply(ftp.NewReply(ftp.CodeFileOK,
		"Listing "+target,
		vfs.FormatMLSDLine(node, time.Now()),
		"End"))
}

func (s *session) cmdRetr(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	node := s.cfg.FS.Lookup(target)
	if node == nil || node.IsDir {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	if node.AnonUpload && s.cfg.Pers.Quirks.AnonUploadNeedsApproval {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable,
			"This file has been uploaded by an anonymous user. It has not "+
				"yet been approved for downloading by the site administrators."))
	}
	if s.anonymous && !node.OtherReadable() {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	content := node.Content
	if content == nil {
		content = vfs.SynthContent(node.Seed, node.Size)
	}
	if s.restOffset > 0 && s.restOffset < int64(len(content)) {
		content = content[s.restOffset:]
	}
	s.restOffset = 0
	s.observe(Event{Kind: EventDownload, Path: target})
	return s.withDataConn(fmt.Sprintf("Opening BINARY mode data connection for %s (%d bytes)", arg, len(content)),
		func(dc net.Conn) error {
			_, err := dc.Write(content)
			return err
		})
}

// maxUploadSize bounds attacker-supplied uploads.
const maxUploadSize = 8 << 20

func (s *session) cmdStor(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	target := vfs.Join(s.cwd, arg)
	// The file is committed inside the transfer closure so the 226
	// completion reply is only sent once the upload is visible.
	return s.withDataConn("Ok to send data", func(dc net.Conn) error {
		content, err := io.ReadAll(io.LimitReader(dc, maxUploadSize))
		if err != nil {
			return err
		}
		owner := ""
		if s.anonymous {
			owner = "ftp"
		}
		if _, err := s.cfg.FS.PutUpload(target, content, vfs.Perm644,
			!s.cfg.Pers.Quirks.UploadRenameSuffix, owner, s.anonymous); err != nil {
			return err
		}
		s.observe(Event{Kind: EventUpload, Path: target, Detail: fmt.Sprintf("%d bytes", len(content))})
		return nil
	})
}

func (s *session) cmdDele(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	target := vfs.Join(s.cwd, arg)
	if err := s.cfg.FS.Delete(target); err != nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	return s.reply(ftp.Replyf(ftp.CodeFileOK, "DELE command successful"))
}

func (s *session) cmdMkd(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	target := vfs.Join(s.cwd, arg)
	if _, err := s.cfg.FS.Mkdir(target, vfs.Perm755); err != nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Cannot create directory", arg))
	}
	return s.reply(ftp.Replyf(ftp.CodePathCreated, "%q - Directory successfully created", target))
}

func (s *session) cmdRmd(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	target := vfs.Join(s.cwd, arg)
	node := s.cfg.FS.Lookup(target)
	if node == nil || !node.IsDir {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Not a directory", arg))
	}
	if err := s.cfg.FS.Delete(target); err != nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Directory not empty", arg))
	}
	return s.reply(ftp.Replyf(ftp.CodeFileOK, "RMD command successful"))
}

func (s *session) cmdRnfr(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	if s.cfg.FS.Lookup(target) == nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	s.renameFrom = target
	return s.reply(ftp.Replyf(ftp.CodePendingInfo, "File exists, ready for destination name"))
}

func (s *session) cmdRnto(arg string) bool {
	if s.renameFrom == "" {
		return s.reply(ftp.Replyf(ftp.CodeBadSequence, "RNFR required first"))
	}
	if s.anonymous && !s.cfg.AnonWritable {
		s.renameFrom = ""
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg))
	}
	srcPath := s.renameFrom
	s.renameFrom = ""
	src := s.cfg.FS.Lookup(srcPath)
	if src == nil || src.IsDir {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "Rename failed"))
	}
	target := vfs.Join(s.cwd, arg)
	content := src.Content
	if content == nil {
		content = vfs.SynthContent(src.Seed, src.Size)
	}
	if _, err := s.cfg.FS.Put(target, content, src.Perm, true); err != nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "Rename failed"))
	}
	_ = s.cfg.FS.Delete(srcPath)
	return s.reply(ftp.Replyf(ftp.CodeFileOK, "Rename successful"))
}

func (s *session) cmdSize(arg string) bool {
	node := s.cfg.FS.Lookup(vfs.Join(s.cwd, arg))
	if node == nil || node.IsDir {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: not a regular file", arg))
	}
	return s.reply(ftp.Replyf(213, "%d", node.Size))
}

func (s *session) cmdMdtm(arg string) bool {
	node := s.cfg.FS.Lookup(vfs.Join(s.cwd, arg))
	if node == nil {
		return s.reply(ftp.Replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg))
	}
	t := node.MTime
	if t.IsZero() {
		t = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return s.reply(ftp.Replyf(213, "%s", t.UTC().Format("20060102150405")))
}

func (s *session) cmdRest(arg string) bool {
	var off int64
	if _, err := fmt.Sscanf(strings.TrimSpace(arg), "%d", &off); err != nil || off < 0 {
		return s.reply(ftp.Replyf(ftp.CodeSyntaxError, "REST requires a byte offset"))
	}
	s.restOffset = off
	return s.reply(ftp.Replyf(ftp.CodePendingInfo, "Restarting at %d. Send STORE or RETRIEVE.", off))
}

func (s *session) cmdStat() bool {
	lines := []string{
		fmt.Sprintf("Status of %q", s.cfg.HostName),
		fmt.Sprintf("Logged in as %s", s.authedUser),
		fmt.Sprintf("Current directory: %s", s.cwd),
		"End of status",
	}
	return s.reply(ftp.NewReply(211, lines...))
}
