// Package ftpserver implements the FTP server engine that impersonates
// real-world implementations in the simulated Internet. One engine drives
// every personality: the profile supplies banners, reply texts, feature
// lists, and quirks, while per-host configuration supplies the storage
// driver, anonymous-access policy, NAT posture, and FTPS certificate.
//
// The engine serves both simulated connections (via SimHandler) and real TCP
// sockets (via ServeTCP and the Serve accept loop, used by cmd/ftpserved),
// so the enumerator can be validated against the same code over a real
// network. Storage is pluggable behind the Driver interface; connection
// governance (caps, idle reaping, bandwidth shaping) lives in Governor and
// TokenBucket; and the session loop is allocation-lean — preformatted
// replies, pooled sessions and transfer buffers — so one process sustains
// ~10k concurrent sessions (BenchmarkServerConcurrentSessions).
package ftpserver

import (
	"bytes"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// AnonymousUser is the RFC 1635 anonymous login name; "ftp" is the
// traditional alias.
const AnonymousUser = "anonymous"

// Config describes one FTP host.
type Config struct {
	// Pers selects the implementation profile. Required.
	Pers *personality.Personality
	// FS is the filesystem served to clients. Either FS or Driver is
	// required; a non-nil FS is wrapped in a VFSDriver when Driver is nil.
	FS *vfs.FS
	// Driver is the storage backend. Takes precedence over FS.
	Driver Driver
	// HostName substitutes %HOST% in banners.
	HostName string
	// PublicIP is the host's routable address: the source of outbound
	// (active-mode) connections and, absent the NAT-leak quirk, the
	// address advertised in PASV replies.
	PublicIP simnet.IP
	// InternalIP, when nonzero, is the RFC 1918 address a NAT-ed device
	// leaks in PASV replies if its personality has the leak quirk.
	InternalIP simnet.IP
	// AllowAnonymous permits RFC 1635 anonymous logins.
	AllowAnonymous bool
	// AnonWritable additionally lets the anonymous user STOR/MKD/DELE.
	AnonWritable bool
	// Users maps additional usernames to passwords (honeypots use weak
	// credentials here).
	Users map[string]string
	// Cert enables AUTH TLS when non-nil.
	Cert *certs.Cert
	// RequireTLS refuses logins until the connection is upgraded.
	RequireTLS bool
	// RequestLimit, when positive, terminates the session with a 421
	// after that many commands — servers in the wild cap crawlers this
	// way, and the enumerator must treat it as refusal of service.
	RequestLimit int
	// IdleTimeout bounds inactivity; zero means the engine default of
	// 60s. Ungoverned sessions enforce it with per-read deadlines;
	// governed sessions (MaxConns or MaxConnsPerIP set) use the
	// governor's shared reaper ticker instead.
	IdleTimeout time.Duration
	// MaxConns caps concurrent sessions; excess connections are shed
	// with a polite 421. Zero means ungoverned (no cap, no reaper).
	MaxConns int
	// MaxConnsPerIP caps concurrent sessions per remote address.
	MaxConnsPerIP int
	// BandwidthPerSession, when positive, shapes each session's data
	// channels to this many bytes/second (token bucket).
	BandwidthPerSession int64
	// BandwidthGlobal, when positive, shapes the sum of all sessions'
	// data channels to this many bytes/second.
	BandwidthGlobal int64
	// Metrics, when non-nil, receives the server's counters and gauges
	// (accepts, sessions, sheds, logins, transfers, bytes). A nil
	// registry still yields functional unregistered metrics.
	Metrics *obs.Registry
	// Observer, when non-nil, receives session events (honeypots record
	// through this hook).
	Observer Observer
	// Now, when non-nil, stamps observer events instead of time.Now —
	// honeypot fleets inject a simulated clock here so interaction
	// timelines are reproducible run to run.
	Now func() time.Time
}

// Observer receives wire-level session events.
type Observer interface {
	// Event is called for each notable session event.
	Event(e Event)
}

// EventKind classifies observer events.
type EventKind int

// Observer event kinds.
const (
	EventConnect EventKind = iota + 1
	EventCommand
	EventLoginOK
	EventLoginFail
	EventUpload
	EventDownload
	EventPortBounceAttempt
	EventTLSHandshake
	EventDisconnect
	// EventDelete fires only when a DELE actually removed a path; failed
	// deletes (permission denied, no such file) surface as EventCommand
	// alone, keeping delete accounting symmetric with EventUpload.
	EventDelete
)

// String names the kind for audit sinks and logs.
func (k EventKind) String() string {
	switch k {
	case EventConnect:
		return "connect"
	case EventCommand:
		return "command"
	case EventLoginOK:
		return "login_ok"
	case EventLoginFail:
		return "login_fail"
	case EventUpload:
		return "upload"
	case EventDownload:
		return "download"
	case EventPortBounceAttempt:
		return "port_bounce_attempt"
	case EventTLSHandshake:
		return "tls_handshake"
	case EventDisconnect:
		return "disconnect"
	case EventDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Event is one observed session action.
type Event struct {
	Kind     EventKind
	RemoteIP string
	Command  string // verb for EventCommand
	Arg      string
	User     string
	Pass     string
	Path     string
	Detail   string
	// Bytes is the transfer size for EventUpload/EventDownload.
	Bytes int64
	Time  time.Time
}

// serverMetrics is the registry view of one server, resolved once at
// construction so the hot paths pay one atomic op per event, never a map
// lookup.
type serverMetrics struct {
	accepts    *obs.Counter
	sessions   *obs.Counter
	sheds      *obs.Counter
	commands   *obs.Counter
	logins     *obs.Counter
	loginFails *obs.Counter
	uploads    *obs.Counter
	downloads  *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	active     *obs.Gauge
}

func resolveMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		accepts:    reg.Counter("ftpserver.accepted"),
		sessions:   reg.Counter("ftpserver.sessions"),
		sheds:      reg.Counter("ftpserver.shed"),
		commands:   reg.Counter("ftpserver.commands"),
		logins:     reg.Counter("ftpserver.logins"),
		loginFails: reg.Counter("ftpserver.login_fails"),
		uploads:    reg.Counter("ftpserver.uploads"),
		downloads:  reg.Counter("ftpserver.downloads"),
		bytesIn:    reg.Counter("ftpserver.bytes_in"),
		bytesOut:   reg.Counter("ftpserver.bytes_out"),
		active:     reg.Gauge("ftpserver.active"),
	}
}

// Server is an immutable host definition; each connection gets a session.
type Server struct {
	cfg Config
	drv Driver
	gov *Governor
	m   serverMetrics

	// globalBW shapes the sum of all data channels; nil when uncapped.
	globalBW *TokenBucket

	// Replies that are constant for the server's lifetime, rendered once.
	wireBanner []byte
	wireSyst   []byte
	wireFeat   []byte
	wireHelp   []byte
}

// New validates the configuration and builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Pers == nil {
		return nil, errors.New("ftpserver: config needs a personality")
	}
	if cfg.FS == nil && cfg.Driver == nil {
		return nil, errors.New("ftpserver: config needs a filesystem or driver")
	}
	if cfg.RequireTLS && cfg.Cert == nil {
		return nil, errors.New("ftpserver: RequireTLS without a certificate")
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.FS != nil && cfg.Pers.Quirks.CaseInsensitive {
		cfg.FS.CaseInsensitive = true
	}
	drv := cfg.Driver
	if drv == nil {
		drv = NewVFSDriver(cfg.FS)
	}
	s := &Server{cfg: cfg, drv: drv, m: resolveMetrics(cfg.Metrics)}
	if cfg.MaxConns > 0 || cfg.MaxConnsPerIP > 0 {
		s.gov = NewGovernor(cfg.MaxConns, cfg.MaxConnsPerIP, cfg.IdleTimeout)
	}
	if cfg.BandwidthGlobal > 0 {
		s.globalBW = NewTokenBucket(float64(cfg.BandwidthGlobal), float64(cfg.BandwidthGlobal))
	}

	banner := cfg.Pers.ExpandBanner(remoteIP0(&cfg), cfg.HostName)
	s.wireBanner = ftp.NewReply(ftp.CodeReady, strings.Split(banner, "\n")...).Wire()
	s.wireSyst = ftp.Replyf(ftp.CodeSystem, "%s", cfg.Pers.Syst).Wire()
	if len(cfg.Pers.Features) > 0 {
		lines := make([]string, 0, len(cfg.Pers.Features)+2)
		lines = append(lines, "Features:")
		lines = append(lines, cfg.Pers.Features...)
		lines = append(lines, "End")
		s.wireFeat = ftp.NewReply(ftp.FeatureListCode, lines...).Wire()
	} else {
		s.wireFeat = ftp.Replyf(ftp.CodeNotImplemented, "FEAT not supported").Wire()
	}
	helpLines := cfg.Pers.HelpLines
	if len(helpLines) == 0 {
		helpLines = []string{"Help OK"}
	}
	s.wireHelp = ftp.NewReply(ftp.CodeHelp, helpLines...).Wire()
	return s, nil
}

// Governor returns the server's connection governor, or nil when the server
// is ungoverned (no connection caps configured).
func (s *Server) Governor() *Governor { return s.gov }

// Close releases background resources (the governor's reaper). In-flight
// sessions are left to finish on their own goroutines.
func (s *Server) Close() {
	if s.gov != nil {
		s.gov.Close()
	}
}

// transport abstracts how data channels are established, so the same engine
// serves simulated and real TCP networks.
type transport interface {
	// ListenPASV opens a data listener and returns it with the host-port
	// to advertise in the 227 reply.
	ListenPASV() (net.Listener, ftp.HostPort, error)
	// DialPORT connects to an active-mode target.
	DialPORT(hp ftp.HostPort) (net.Conn, error)
}

// simTransport runs data channels over the simulated network.
type simTransport struct {
	nw  *simnet.Network
	cfg *Config
}

func (t simTransport) ListenPASV() (net.Listener, ftp.HostPort, error) {
	l, err := t.nw.Listen(t.cfg.PublicIP, 0)
	if err != nil {
		return nil, ftp.HostPort{}, err
	}
	addr := l.Addr().(simnet.Addr)
	advertised := t.cfg.PublicIP
	if t.cfg.Pers.Quirks.PASVLeaksInternalIP && t.cfg.InternalIP != 0 {
		advertised = t.cfg.InternalIP
	}
	return l, ftp.HostPort{IP: advertised.Octets(), Port: addr.Port}, nil
}

func (t simTransport) DialPORT(hp ftp.HostPort) (net.Conn, error) {
	ip := simnet.IPFromOctets(hp.IP[0], hp.IP[1], hp.IP[2], hp.IP[3])
	return t.nw.DialFrom(t.cfg.PublicIP, ip, hp.Port)
}

// tcpTransport runs data channels over the real network.
type tcpTransport struct {
	localIP net.IP
}

func (t tcpTransport) ListenPASV() (net.Listener, ftp.HostPort, error) {
	l, err := net.Listen("tcp", net.JoinHostPort(t.localIP.String(), "0"))
	if err != nil {
		return nil, ftp.HostPort{}, err
	}
	hp, err := ftp.HostPortFromAddr(l.Addr().String())
	if err != nil {
		l.Close()
		return nil, ftp.HostPort{}, err
	}
	return l, hp, nil
}

func (t tcpTransport) DialPORT(hp ftp.HostPort) (net.Conn, error) {
	return net.DialTimeout("tcp", hp.Addr(), 5*time.Second)
}

// SimHandler adapts the server to the simulated network.
func (s *Server) SimHandler() simnet.Handler {
	return simnet.HandlerFunc(func(nw *simnet.Network, conn net.Conn) {
		s.serve(conn, simTransport{nw: nw, cfg: &s.cfg})
	})
}

// ServeTCP serves one real TCP connection (cmd/ftpserved).
func (s *Server) ServeTCP(conn net.Conn) {
	localIP := net.IPv4(127, 0, 0, 1)
	if ta, ok := conn.LocalAddr().(*net.TCPAddr); ok {
		localIP = ta.IP
	}
	s.serve(conn, tcpTransport{localIP: localIP})
}

// Serve accepts connections from l until it fails (listener closed), giving
// each to its own session goroutine. Governance — caps, shedding, idle
// reaping — happens inside serve, so Serve is the same accept loop whether
// or not the server is governed. It returns the accept error.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.m.accepts.Inc()
		go s.ServeTCP(conn)
	}
}

// Preformatted replies shared by every server: the control-channel hot path
// sends these without rendering or allocation.
var (
	wireGoodbye         = ftp.Replyf(ftp.CodeClosing, "Goodbye.").Wire()
	wireNoop            = ftp.Replyf(ftp.CodeOK, "NOOP command successful").Wire()
	wireTooManyRequests = ftp.Replyf(ftp.CodeServiceNotAvail, "Too many requests; closing control connection.").Wire()
	wireShed            = ftp.Replyf(ftp.CodeServiceNotAvail, "Too many connections; try again later.").Wire()
	wirePleaseLogin     = ftp.Replyf(ftp.CodeNotLoggedIn, "Please login with USER and PASS.").Wire()
	wireAnonGranted     = ftp.Replyf(ftp.CodeLoggedIn, "Anonymous access granted, restrictions apply").Wire()
	wireLoginIncorrect  = ftp.Replyf(ftp.CodeNotLoggedIn, "Login incorrect.").Wire()
	wireUserFirst       = ftp.Replyf(ftp.CodeBadSequence, "Login with USER first.").Wire()
	wireModeS           = ftp.Replyf(ftp.CodeOK, "Mode set to S").Wire()
	wireStruF           = ftp.Replyf(ftp.CodeOK, "Structure set to F").Wire()
	wireCwdOK           = ftp.Replyf(ftp.CodeFileOK, "CWD command successful").Wire()
	wireAborOK          = ftp.Replyf(ftp.CodeTransferOK, "ABOR command successful").Wire()
	wireDeleOK          = ftp.Replyf(ftp.CodeFileOK, "DELE command successful").Wire()
	wireRmdOK           = ftp.Replyf(ftp.CodeFileOK, "RMD command successful").Wire()
	wireRenameOK        = ftp.Replyf(ftp.CodeFileOK, "Rename successful").Wire()
	wireRenameFailed    = ftp.Replyf(ftp.CodeFileUnavailable, "Rename failed").Wire()
	wireRnfrOK          = ftp.Replyf(ftp.CodePendingInfo, "File exists, ready for destination name").Wire()
	wireRnfrFirst       = ftp.Replyf(ftp.CodeBadSequence, "RNFR required first").Wire()
	wireTransferOK      = ftp.Replyf(ftp.CodeTransferOK, "Transfer complete").Wire()
	wireTransferAborted = ftp.Replyf(ftp.CodeTransferAborted, "Transfer aborted").Wire()
	wireCantOpenData    = ftp.Replyf(ftp.CodeCantOpenData, "Can't open data connection").Wire()
	wireNoPassive       = ftp.Replyf(ftp.CodeCantOpenData, "Cannot open passive connection").Wire()
	wireOpeningList     = ftp.Replyf(ftp.CodeDataOpen, "Opening ASCII mode data connection for file list").Wire()
	wireOkToSend        = ftp.Replyf(ftp.CodeDataOpen, "Ok to send data").Wire()
	wireTypeI           = ftp.Replyf(ftp.CodeOK, "Type set to I").Wire()
	wireTypeA           = ftp.Replyf(ftp.CodeOK, "Type set to A").Wire()
	wirePortOK          = ftp.Replyf(ftp.CodeOK, "PORT command successful").Wire()
	wireQuotaExceeded   = ftp.Replyf(ftp.CodeExceededStorage, "Quota exceeded: storage allocation").Wire()
	wireRateLimited     = ftp.Replyf(ftp.CodeFileBusy, "Requested action not taken: operation rate limit").Wire()
)

// session is per-connection state, pooled across connections.
type session struct {
	srv   *Server
	cfg   *Config
	drv   Driver
	conn  *ftp.Conn
	trans transport
	cs    *connState // non-nil when governed

	remoteIP   string
	user       string // pending USER argument
	authedUser string // non-empty after successful login
	anonymous  bool
	cwd        string
	tlsActive  bool
	restOffset int64
	renameFrom string

	pasvListener net.Listener
	pasvAddr     ftp.HostPort
	portTarget   *ftp.HostPort

	requests int

	// scratch backs single-line reply formatting; it grows to the longest
	// reply the session sends and is reused for every subsequent one.
	scratch []byte
	// bw shapes this session's data channels; lazily built.
	bw *TokenBucket
}

// sessionPool recycles session state (including reply scratch buffers and
// the ftp.Conn's 8 KiB of bufio) across connections.
var sessionPool = sync.Pool{New: func() any {
	return &session{conn: &ftp.Conn{}}
}}

// xferBufPool holds data-transfer copy buffers.
var xferBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// listBufPool holds listing render buffers.
var listBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// uploadBufPool holds STOR receive buffers.
var uploadBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (s *Server) serve(nc net.Conn, trans transport) {
	defer nc.Close()

	remoteIP := ""
	if host, _, err := net.SplitHostPort(nc.RemoteAddr().String()); err == nil {
		remoteIP = host
	}

	// Admission: governed servers shed over-cap connections with a 421
	// before the banner — polite refusal instead of a silent close or an
	// accepted-but-starved session.
	var cs *connState
	if s.gov != nil {
		var ok bool
		if cs, ok = s.gov.Acquire(remoteIP, nc); !ok {
			s.m.sheds.Inc()
			c := ftp.NewConn(nc)
			c.Timeout = 5 * time.Second
			c.SendRaw(wireShed)
			return
		}
		defer s.gov.Release(cs)
	}

	s.m.sessions.Inc()
	s.m.active.Inc()
	defer s.m.active.Dec()

	sess := sessionPool.Get().(*session)
	defer func() {
		sess.reset()
		sessionPool.Put(sess)
	}()
	sess.srv = s
	sess.cfg = &s.cfg
	sess.drv = s.drv
	sess.trans = trans
	sess.cs = cs
	sess.remoteIP = remoteIP
	sess.cwd = "/"
	if sess.conn == nil {
		sess.conn = &ftp.Conn{}
	}
	if sess.conn.NetConn() == nil {
		*sess.conn = *ftp.NewConn(nc)
	} else {
		sess.conn.Reset(nc)
	}
	c := sess.conn
	if cs == nil {
		// Ungoverned: per-read deadlines enforce the idle timeout.
		c.Timeout = s.cfg.IdleTimeout
	}

	defer sess.closeData()
	sess.observe(Event{Kind: EventConnect})
	defer sess.observe(Event{Kind: EventDisconnect})

	if err := c.SendRaw(s.wireBanner); err != nil {
		return
	}

	for {
		cmd, err := c.ReadCommand()
		if err != nil {
			return
		}
		if cs != nil {
			cs.touch()
		}
		sess.requests++
		s.m.commands.Inc()
		sess.observe(Event{Kind: EventCommand, Command: cmd.Name, Arg: cmd.Arg})
		if s.cfg.RequestLimit > 0 && sess.requests > s.cfg.RequestLimit {
			c.SendRaw(wireTooManyRequests)
			return
		}
		if done := sess.dispatch(cmd); done {
			return
		}
	}
}

// reset clears per-connection state, retaining the conn wrapper and scratch
// buffer for the next session.
func (s *session) reset() {
	conn, scratch := s.conn, s.scratch
	*s = session{conn: conn, scratch: scratch}
}

// remoteIP0 yields the address embedded in %IP% banners: NAT-ed devices show
// their internal address (the paper's private-banner-IP observation), others
// their public one.
func remoteIP0(cfg *Config) string {
	if cfg.InternalIP != 0 {
		return cfg.InternalIP.String()
	}
	return cfg.PublicIP.String()
}

func (s *session) observe(e Event) {
	if s.cfg.Observer == nil {
		return
	}
	e.RemoteIP = s.remoteIP
	if e.User == "" {
		e.User = s.authedUser
	}
	if e.Time.IsZero() {
		if s.cfg.Now != nil {
			e.Time = s.cfg.Now()
		} else {
			e.Time = time.Now()
		}
	}
	s.cfg.Observer.Event(e)
}

func (s *session) reply(r ftp.Reply) bool {
	return s.conn.SendReply(r) != nil
}

// replyRaw sends a preformatted reply; the hot path for constant replies.
func (s *session) replyRaw(b []byte) bool {
	return s.conn.SendRaw(b) != nil
}

// replyf formats a single-line reply into the session's scratch buffer.
func (s *session) replyf(code int, format string, args ...any) bool {
	b, err := s.conn.SendReplyLine(s.scratch, code, format, args...)
	s.scratch = b
	return err != nil
}

// bwBucket returns the session's bandwidth bucket, building it on first
// transfer. Nil when the server imposes no per-session cap.
func (s *session) bwBucket() *TokenBucket {
	if s.cfg.BandwidthPerSession <= 0 {
		return nil
	}
	if s.bw == nil {
		bps := float64(s.cfg.BandwidthPerSession)
		s.bw = NewTokenBucket(bps, bps)
	}
	return s.bw
}

// driverReply maps driver sentinel errors onto their reply codes, falling
// back to the supplied not-found reply.
func (s *session) driverReply(err error, fallbackCode int, fallbackFormat string, args ...any) bool {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		return s.replyRaw(wireQuotaExceeded)
	case errors.Is(err, ErrRateLimited):
		return s.replyRaw(wireRateLimited)
	default:
		return s.replyf(fallbackCode, fallbackFormat, args...)
	}
}

// dispatch executes one command; the return value reports session end.
func (s *session) dispatch(cmd ftp.Command) bool {
	switch cmd.Name {
	case "QUIT":
		s.replyRaw(wireGoodbye)
		return true
	case "USER":
		return s.cmdUser(cmd.Arg)
	case "PASS":
		return s.cmdPass(cmd.Arg)
	case "AUTH":
		return s.cmdAuth(cmd.Arg)
	case "FEAT":
		return s.replyRaw(s.srv.wireFeat)
	case "SYST":
		return s.replyRaw(s.srv.wireSyst)
	case "NOOP":
		return s.replyRaw(wireNoop)
	case "HELP":
		return s.replyRaw(s.srv.wireHelp)
	case "PBSZ":
		if !s.tlsActive {
			return s.replyf(ftp.CodeBadSequence, "PBSZ requires a security exchange.")
		}
		return s.replyf(ftp.CodeOK, "PBSZ 0 successful")
	case "PROT":
		if !s.tlsActive {
			return s.replyf(ftp.CodeBadSequence, "PROT requires a security exchange.")
		}
		if strings.EqualFold(cmd.Arg, "P") || strings.EqualFold(cmd.Arg, "C") {
			return s.replyf(ftp.CodeOK, "Protection level set to %s", strings.ToUpper(cmd.Arg))
		}
		return s.replyf(ftp.CodeBadProtSetting, "Unsupported protection level")
	}

	if s.authedUser == "" {
		return s.replyRaw(wirePleaseLogin)
	}

	switch cmd.Name {
	case "PWD", "XPWD":
		return s.replyf(ftp.CodePathCreated, "%q is the current directory", s.cwd)
	case "CWD":
		return s.cmdCwd(cmd.Arg)
	case "CDUP", "XCUP":
		return s.cmdCwd("..")
	case "TYPE":
		switch strings.ToUpper(cmd.Arg) {
		case "I":
			return s.replyRaw(wireTypeI)
		case "A":
			return s.replyRaw(wireTypeA)
		case "A N", "L 8":
			return s.replyf(ftp.CodeOK, "Type set to %s", strings.ToUpper(cmd.Arg))
		default:
			return s.replyf(ftp.CodeSyntaxError, "Unrecognized TYPE argument")
		}
	case "MODE":
		if strings.EqualFold(cmd.Arg, "S") {
			return s.replyRaw(wireModeS)
		}
		return s.replyf(ftp.CodeNotImplemented, "Unsupported MODE")
	case "STRU":
		if strings.EqualFold(cmd.Arg, "F") {
			return s.replyRaw(wireStruF)
		}
		return s.replyf(ftp.CodeNotImplemented, "Unsupported STRU")
	case "PASV":
		return s.cmdPasv()
	case "EPSV":
		return s.cmdEpsv()
	case "PORT":
		return s.cmdPort(cmd.Arg)
	case "EPRT":
		return s.cmdEprt(cmd.Arg)
	case "LIST":
		return s.cmdList(cmd.Arg, listStyleDefault)
	case "NLST":
		return s.cmdList(cmd.Arg, listStyleNames)
	case "MLSD":
		if !s.supportsMLSx() {
			return s.replyf(ftp.CodeCmdUnrecognized, "MLSD not understood")
		}
		return s.cmdList(cmd.Arg, listStyleMLSD)
	case "MLST":
		return s.cmdMlst(cmd.Arg)
	case "RETR":
		return s.cmdRetr(cmd.Arg)
	case "STOR":
		return s.cmdStor(cmd.Arg)
	case "APPE":
		return s.cmdStor(cmd.Arg)
	case "DELE":
		return s.cmdDele(cmd.Arg)
	case "MKD", "XMKD":
		return s.cmdMkd(cmd.Arg)
	case "RMD", "XRMD":
		return s.cmdRmd(cmd.Arg)
	case "RNFR":
		return s.cmdRnfr(cmd.Arg)
	case "RNTO":
		return s.cmdRnto(cmd.Arg)
	case "SIZE":
		return s.cmdSize(cmd.Arg)
	case "MDTM":
		return s.cmdMdtm(cmd.Arg)
	case "REST":
		return s.cmdRest(cmd.Arg)
	case "ABOR":
		s.closeData()
		return s.replyRaw(wireAborOK)
	case "STAT":
		return s.cmdStat()
	case "SITE":
		return s.cmdSite(cmd.Arg)
	default:
		return s.replyf(ftp.CodeCmdUnrecognized, "%s not understood", cmd.Name)
	}
}

func (s *session) cmdUser(arg string) bool {
	if arg == "" {
		return s.replyf(ftp.CodeSyntaxError, "USER: command requires a parameter")
	}
	if s.cfg.RequireTLS && !s.tlsActive {
		return s.replyf(ftp.CodeNotLoggedIn,
			"This server does not allow plain FTP. You have to use FTP over TLS.")
	}
	lower := strings.ToLower(arg)
	if (lower == AnonymousUser || lower == "ftp") && !s.cfg.AllowAnonymous {
		s.observe(Event{Kind: EventLoginFail, Detail: "anonymous denied", Pass: ""})
		return s.replyf(ftp.CodeNotLoggedIn, "Anonymous access denied.")
	}
	s.user = arg
	return s.replyf(ftp.CodeNeedPassword, "%s", s.cfg.Pers.Expand331(arg))
}

func (s *session) cmdPass(arg string) bool {
	if s.user == "" {
		return s.replyRaw(wireUserFirst)
	}
	lower := strings.ToLower(s.user)
	if lower == AnonymousUser || lower == "ftp" {
		// RFC 1635: any password is accepted for the anonymous user.
		s.authedUser = AnonymousUser
		s.anonymous = true
		s.srv.m.logins.Inc()
		s.observe(Event{Kind: EventLoginOK, Pass: arg, Detail: "anonymous"})
		return s.replyRaw(wireAnonGranted)
	}
	if want, ok := s.cfg.Users[s.user]; ok && want == arg {
		s.authedUser = s.user
		s.srv.m.logins.Inc()
		s.observe(Event{Kind: EventLoginOK, Pass: arg})
		return s.replyf(ftp.CodeLoggedIn, "User %s logged in", s.user)
	}
	s.srv.m.loginFails.Inc()
	s.observe(Event{Kind: EventLoginFail, User: s.user, Pass: arg})
	s.user = ""
	return s.replyRaw(wireLoginIncorrect)
}

func (s *session) cmdAuth(arg string) bool {
	mech := strings.ToUpper(strings.TrimSpace(arg))
	if mech != "TLS" && mech != "SSL" {
		return s.replyf(ftp.CodeSyntaxError, "Unknown AUTH mechanism %s", arg)
	}
	if s.cfg.Cert == nil || !s.cfg.Pers.Quirks.SupportsFTPS {
		return s.replyf(ftp.CodeTLSNotAvailable, "AUTH %s not available", mech)
	}
	if s.tlsActive {
		return s.replyf(ftp.CodeBadSequence, "Already in TLS mode")
	}
	if s.replyf(ftp.CodeAuthOK, "AUTH %s successful", mech) {
		return true
	}
	tc := tls.Server(s.conn.NetConn(), &tls.Config{
		Certificates: []tls.Certificate{s.cfg.Cert.TLSCertificate()},
		MinVersion:   tls.VersionTLS12,
	})
	if err := tc.Handshake(); err != nil {
		return true
	}
	s.conn.Upgrade(tc)
	s.tlsActive = true
	s.observe(Event{Kind: EventTLSHandshake})
	return false
}

func (s *session) cmdSite(arg string) bool {
	if len(s.cfg.Pers.SiteHelp) == 0 {
		return s.replyf(ftp.CodeNotImplemented, "SITE not understood")
	}
	sub := strings.ToUpper(strings.TrimSpace(arg))
	if sub == "HELP" || sub == "" {
		lines := append([]string{"The following SITE commands are recognized:"}, s.cfg.Pers.SiteHelp...)
		return s.reply(ftp.NewReply(ftp.CodeHelp, append(lines, "End")...))
	}
	return s.replyf(ftp.CodeNotImplemented, "SITE %s not understood", sub)
}

func (s *session) cmdCwd(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	node := s.drv.Lookup(target)
	if node == nil || !node.IsDir {
		return s.replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	s.cwd = target
	return s.replyRaw(wireCwdOK)
}

func (s *session) cmdPasv() bool {
	if s.cfg.Pers.Quirks.EPSVOnly {
		return s.replyf(ftp.CodeNotImplemented, "PASV not supported; use EPSV")
	}
	s.closeData()
	l, hp, err := s.trans.ListenPASV()
	if err != nil {
		return s.replyRaw(wireNoPassive)
	}
	s.pasvListener = l
	s.pasvAddr = hp
	return s.replyf(ftp.CodePassive, "%s", ftp.FormatPASVReply(hp))
}

func (s *session) cmdEpsv() bool {
	s.closeData()
	l, hp, err := s.trans.ListenPASV()
	if err != nil {
		return s.replyRaw(wireNoPassive)
	}
	s.pasvListener = l
	s.pasvAddr = hp
	return s.replyf(ftp.CodeExtendedPassive, "%s", ftp.FormatEPSVReply(hp.Port))
}

func (s *session) cmdPort(arg string) bool {
	hp, err := ftp.ParseHostPort(arg)
	if err != nil {
		return s.replyf(ftp.CodeSyntaxError, "Illegal PORT command")
	}
	return s.setPortTarget(hp)
}

func (s *session) cmdEprt(arg string) bool {
	// |1|ip|port|
	if len(arg) == 0 {
		return s.replyf(ftp.CodeSyntaxError, "Illegal EPRT command")
	}
	fields := strings.Split(arg, string(arg[0]))
	if len(fields) != 5 || fields[1] != "1" {
		return s.replyf(ftp.CodeSyntaxError, "Illegal EPRT command")
	}
	hp, err := ftp.HostPortFromAddr(net.JoinHostPort(fields[2], fields[3]))
	if err != nil {
		return s.replyf(ftp.CodeSyntaxError, "Illegal EPRT command")
	}
	return s.setPortTarget(hp)
}

func (s *session) setPortTarget(hp ftp.HostPort) bool {
	if hp.IPString() != s.remoteIP {
		s.observe(Event{Kind: EventPortBounceAttempt, Detail: hp.Addr()})
		if s.cfg.Pers.Quirks.ValidatePORT {
			return s.replyf(ftp.CodeCmdUnrecognized,
				"Illegal PORT command: address mismatch")
		}
	}
	s.closeData()
	s.portTarget = &hp
	return s.replyRaw(wirePortOK)
}

// openData establishes the data connection negotiated by PASV or PORT.
func (s *session) openData() (net.Conn, error) {
	if s.pasvListener != nil {
		l := s.pasvListener
		type result struct {
			conn net.Conn
			err  error
		}
		ch := make(chan result, 1)
		go func() {
			c, err := l.Accept()
			ch <- result{conn: c, err: err}
		}()
		select {
		case r := <-ch:
			return r.conn, r.err
		case <-time.After(5 * time.Second):
			l.Close()
			return nil, errors.New("ftpserver: passive accept timeout")
		}
	}
	if s.portTarget != nil {
		return s.trans.DialPORT(*s.portTarget)
	}
	return nil, errors.New("ftpserver: no data connection negotiated")
}

func (s *session) closeData() {
	if s.pasvListener != nil {
		s.pasvListener.Close()
		s.pasvListener = nil
	}
	s.portTarget = nil
}

// withDataConn runs fn over an established data connection, bracketing it
// with the 150/226 replies. The connection is bandwidth-shaped when the
// server or session carries a cap, and governed sessions stamp activity per
// chunk so the idle reaper spares long slow transfers.
func (s *session) withDataConn(openingMsg []byte, fn func(dc net.Conn) error) bool {
	dc, err := s.openData()
	if err != nil {
		s.closeData()
		return s.replyRaw(wireCantOpenData)
	}
	defer func() {
		dc.Close()
		s.closeData()
	}()
	if s.replyRaw(openingMsg) {
		return true
	}
	var touch func()
	if s.cs != nil {
		touch = s.cs.touch
	} else {
		// Ungoverned sessions keep the classic fixed transfer deadline.
		dc.SetDeadline(time.Now().Add(30 * time.Second))
	}
	shaped := shapeData(dc, s.bwBucket(), s.srv.globalBW, touch)
	if err := fn(shaped); err != nil {
		// Driver rejections surface their classified code (552/450)
		// instead of the generic transfer abort.
		switch {
		case errors.Is(err, ErrQuotaExceeded):
			return s.replyRaw(wireQuotaExceeded)
		case errors.Is(err, ErrRateLimited):
			return s.replyRaw(wireRateLimited)
		}
		return s.replyRaw(wireTransferAborted)
	}
	return s.replyRaw(wireTransferOK)
}

// listStyle selects the LIST-family response body.
type listStyle int

const (
	listStyleDefault listStyle = iota
	listStyleNames
	listStyleMLSD
)

// supportsMLSx reports whether the personality advertises RFC 3659
// machine-readable listings in its FEAT body.
func (s *session) supportsMLSx() bool {
	for _, f := range s.cfg.Pers.Features {
		if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(f)), "MLST") {
			return true
		}
	}
	return false
}

func (s *session) cmdList(arg string, style listStyle) bool {
	// Strip ls-style flags ("-la", "-al /pub", ...).
	path := strings.TrimSpace(arg)
	for strings.HasPrefix(path, "-") {
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = strings.TrimSpace(path[i+1:])
		} else {
			path = ""
		}
	}
	target := s.cwd
	if path != "" {
		target = vfs.Join(s.cwd, path)
	}
	entries, err := s.drv.List(target)
	if err != nil {
		return s.driverReply(err, ftp.CodeFileUnavailable, "%s: No such file or directory", path)
	}
	// Render into a pooled scratch buffer: listings are the hottest data
	// transfer on a crawled server, and the body never needs to live past
	// the write.
	bp := listBufPool.Get().(*[]byte)
	body := (*bp)[:0]
	switch style {
	case listStyleNames:
		body = vfs.AppendNameList(body, entries)
	case listStyleMLSD:
		body = vfs.AppendMLSDListing(body, entries, time.Now())
	default:
		body = vfs.AppendListing(body, entries, s.cfg.Pers.Quirks.ListStyle, time.Now())
	}
	*bp = body
	done := s.withDataConn(wireOpeningList, func(dc net.Conn) error {
		n, err := dc.Write(body)
		s.srv.m.bytesOut.Add(uint64(n))
		return err
	})
	listBufPool.Put(bp)
	return done
}

// cmdMlst returns machine-readable facts for one path on the control
// channel (RFC 3659 §7.3).
func (s *session) cmdMlst(arg string) bool {
	if !s.supportsMLSx() {
		return s.replyf(ftp.CodeCmdUnrecognized, "MLST not understood")
	}
	target := s.cwd
	if strings.TrimSpace(arg) != "" {
		target = vfs.Join(s.cwd, arg)
	}
	node := s.drv.Lookup(target)
	if node == nil {
		return s.replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	return s.reply(ftp.NewReply(ftp.CodeFileOK,
		"Listing "+target,
		vfs.FormatMLSDLine(node, time.Now()),
		"End"))
}

func (s *session) cmdRetr(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	node := s.drv.Lookup(target)
	if node == nil || node.IsDir {
		return s.replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	if node.AnonUpload && s.cfg.Pers.Quirks.AnonUploadNeedsApproval {
		return s.replyf(ftp.CodeFileUnavailable,
			"This file has been uploaded by an anonymous user. It has not "+
				"yet been approved for downloading by the site administrators.")
	}
	if s.anonymous && !node.OtherReadable() {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	content := node.Content
	if content == nil {
		content = vfs.SynthContent(node.Seed, node.Size)
	}
	if s.restOffset > 0 && s.restOffset < int64(len(content)) {
		content = content[s.restOffset:]
	}
	s.restOffset = 0
	s.srv.m.downloads.Inc()
	s.observe(Event{Kind: EventDownload, Path: target, Bytes: int64(len(content))})
	opening := fmt.Appendf(nil, "150 Opening BINARY mode data connection for %s (%d bytes)\r\n", arg, len(content))
	return s.withDataConn(opening,
		func(dc net.Conn) error {
			n, err := dc.Write(content)
			s.srv.m.bytesOut.Add(uint64(n))
			return err
		})
}

// maxUploadSize bounds attacker-supplied uploads.
const maxUploadSize = 8 << 20

func (s *session) cmdStor(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	target := vfs.Join(s.cwd, arg)
	// The file is committed inside the transfer closure so the 226
	// completion reply is only sent once the upload is visible; driver
	// rejections propagate as the closure error and withDataConn maps
	// them onto 552/450.
	return s.withDataConn(wireOkToSend, func(dc net.Conn) error {
		buf := uploadBufPool.Get().(*bytes.Buffer)
		defer func() {
			buf.Reset()
			uploadBufPool.Put(buf)
		}()
		bp := xferBufPool.Get().(*[]byte)
		_, err := io.CopyBuffer(buf, io.LimitReader(dc, maxUploadSize), *bp)
		xferBufPool.Put(bp)
		if err != nil {
			return err
		}
		// The stored copy must outlive the pooled buffer: one exact-size
		// allocation replaces io.ReadAll's growth sequence.
		content := append([]byte(nil), buf.Bytes()...)
		s.srv.m.bytesIn.Add(uint64(len(content)))
		owner := ""
		if s.anonymous {
			owner = "ftp"
		}
		if _, err := s.drv.Store(target, content, vfs.Perm644,
			!s.cfg.Pers.Quirks.UploadRenameSuffix, owner, s.anonymous); err != nil {
			return err
		}
		s.srv.m.uploads.Inc()
		s.observe(Event{Kind: EventUpload, Path: target, Detail: fmt.Sprintf("%d bytes", len(content)), Bytes: int64(len(content))})
		return nil
	})
}

func (s *session) cmdDele(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	target := vfs.Join(s.cwd, arg)
	if err := s.drv.Delete(target); err != nil {
		return s.driverReply(err, ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	s.observe(Event{Kind: EventDelete, Path: target})
	return s.replyRaw(wireDeleOK)
}

func (s *session) cmdMkd(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	target := vfs.Join(s.cwd, arg)
	if _, err := s.drv.Mkdir(target, vfs.Perm755); err != nil {
		return s.driverReply(err, ftp.CodeFileUnavailable, "%s: Cannot create directory", arg)
	}
	return s.replyf(ftp.CodePathCreated, "%q - Directory successfully created", target)
}

func (s *session) cmdRmd(arg string) bool {
	if s.anonymous && !s.cfg.AnonWritable {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	target := vfs.Join(s.cwd, arg)
	node := s.drv.Lookup(target)
	if node == nil || !node.IsDir {
		return s.replyf(ftp.CodeFileUnavailable, "%s: Not a directory", arg)
	}
	if err := s.drv.Delete(target); err != nil {
		return s.driverReply(err, ftp.CodeFileUnavailable, "%s: Directory not empty", arg)
	}
	return s.replyRaw(wireRmdOK)
}

func (s *session) cmdRnfr(arg string) bool {
	target := vfs.Join(s.cwd, arg)
	if s.drv.Lookup(target) == nil {
		return s.replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	s.renameFrom = target
	return s.replyRaw(wireRnfrOK)
}

func (s *session) cmdRnto(arg string) bool {
	if s.renameFrom == "" {
		return s.replyRaw(wireRnfrFirst)
	}
	if s.anonymous && !s.cfg.AnonWritable {
		s.renameFrom = ""
		return s.replyf(ftp.CodeFileUnavailable, "%s: Permission denied", arg)
	}
	srcPath := s.renameFrom
	s.renameFrom = ""
	src := s.drv.Lookup(srcPath)
	if src == nil || src.IsDir {
		return s.replyRaw(wireRenameFailed)
	}
	target := vfs.Join(s.cwd, arg)
	content := src.Content
	if content == nil {
		content = vfs.SynthContent(src.Seed, src.Size)
	}
	if _, err := s.drv.Store(target, content, src.Perm, true, "", false); err != nil {
		if errors.Is(err, ErrQuotaExceeded) || errors.Is(err, ErrRateLimited) {
			return s.driverReply(err, ftp.CodeFileUnavailable, "Rename failed")
		}
		return s.replyRaw(wireRenameFailed)
	}
	_ = s.drv.Delete(srcPath)
	return s.replyRaw(wireRenameOK)
}

func (s *session) cmdSize(arg string) bool {
	node := s.drv.Lookup(vfs.Join(s.cwd, arg))
	if node == nil || node.IsDir {
		return s.replyf(ftp.CodeFileUnavailable, "%s: not a regular file", arg)
	}
	return s.replyf(213, "%d", node.Size)
}

func (s *session) cmdMdtm(arg string) bool {
	node := s.drv.Lookup(vfs.Join(s.cwd, arg))
	if node == nil {
		return s.replyf(ftp.CodeFileUnavailable, "%s: No such file or directory", arg)
	}
	t := node.MTime
	if t.IsZero() {
		t = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return s.replyf(213, "%s", t.UTC().Format("20060102150405"))
}

func (s *session) cmdRest(arg string) bool {
	var off int64
	if _, err := fmt.Sscanf(strings.TrimSpace(arg), "%d", &off); err != nil || off < 0 {
		return s.replyf(ftp.CodeSyntaxError, "REST requires a byte offset")
	}
	s.restOffset = off
	return s.replyf(ftp.CodePendingInfo, "Restarting at %d. Send STORE or RETRIEVE.", off)
}

func (s *session) cmdStat() bool {
	lines := []string{
		fmt.Sprintf("Status of %q", s.cfg.HostName),
		fmt.Sprintf("Logged in as %s", s.authedUser),
		fmt.Sprintf("Current directory: %s", s.cwd),
		"End of status",
	}
	return s.reply(ftp.NewReply(211, lines...))
}
