package ftpserver

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestXferlogFormat: transfer events render exact wu-ftpd xferlog(5) lines;
// non-transfer events are ignored.
func TestXferlogFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := NewXferlogSink(&buf)
	at := time.Date(2026, time.August, 8, 9, 30, 5, 0, time.UTC)
	sink.Event(Event{Kind: EventDownload, RemoteIP: "198.51.100.9", User: "anonymous",
		Path: "/pub/hello.txt", Bytes: 11, Time: at})
	sink.Event(Event{Kind: EventUpload, RemoteIP: "198.51.100.9", User: "admin",
		Path: "/incoming/evil name.bin", Bytes: 512, Time: at})
	sink.Event(Event{Kind: EventLoginOK, RemoteIP: "198.51.100.9", Time: at})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want := "Sat Aug  8 09:30:05 2026 0 198.51.100.9 11 /pub/hello.txt b _ o a anonymous ftp 0 * c\n" +
		"Sat Aug  8 09:30:05 2026 0 198.51.100.9 512 /incoming/evil_name.bin b _ i r admin ftp 0 * c\n"
	if got := buf.String(); got != want {
		t.Errorf("xferlog:\n got %q\nwant %q", got, want)
	}
}

// TestXferlogFieldCount: every line holds exactly the 14 space-separated
// xferlog fields (the date itself spans 5), even for hostile filenames.
func TestXferlogFieldCount(t *testing.T) {
	var buf bytes.Buffer
	sink := NewXferlogSink(&buf)
	sink.Event(Event{Kind: EventUpload, RemoteIP: "203.0.113.5",
		Path: "/incoming/a b\tc\nd", Bytes: 1, Time: time.Unix(0, 0).UTC()})
	sink.Close()
	line := strings.TrimSuffix(buf.String(), "\n")
	if fields := strings.Fields(line); len(fields) != 18 {
		t.Errorf("xferlog line has %d fields, want 18: %q", len(fields), line)
	}
}

// TestJSONLSink: events round-trip through the JSONL audit stream.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Event(Event{Kind: EventLoginFail, RemoteIP: "203.0.113.5", User: "root",
		Pass: "hunter2", Time: time.Unix(1754600000, 0).UTC()})
	sink.Event(Event{Kind: EventDownload, RemoteIP: "203.0.113.5", Path: "/pub/x", Bytes: 42,
		Time: time.Unix(1754600001, 0).UTC()})
	sink.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev struct {
		Kind  string `json:"kind"`
		Pass  string `json:"pass"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "login_fail" || ev.Pass != "hunter2" {
		t.Errorf("first line decoded as %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "download" || ev.Bytes != 42 {
		t.Errorf("second line decoded as %+v", ev)
	}
}

// TestMultiObserver: fan-out reaches every sink, drops nils, and
// short-circuits to nil when nothing listens (preserving the server's
// no-observer fast path).
func TestMultiObserver(t *testing.T) {
	if MultiObserver(nil, nil) != nil {
		t.Error("MultiObserver of nils must be nil")
	}
	a, b := &recorder{}, &recorder{}
	if got := MultiObserver(nil, a); got != Observer(a) {
		t.Error("single observer must short-circuit to itself")
	}
	m := MultiObserver(a, nil, b)
	m.Event(Event{Kind: EventConnect})
	if a.kinds()[EventConnect] != 1 || b.kinds()[EventConnect] != 1 {
		t.Error("fan-out missed a sink")
	}
}

// TestXferlogThroughServer: a real session over simnet — login, download,
// upload — lands in both audit sinks wired through MultiObserver, with the
// sizes the wire actually carried.
func TestXferlogThroughServer(t *testing.T) {
	var xfer, audit bytes.Buffer
	xs, js := NewXferlogSink(&xfer), NewJSONLSink(&audit)
	cfg := anonConfig()
	cfg.AnonWritable = true
	cfg.Observer = MultiObserver(xs, js)
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	dc := env.openPassive(t, c)
	if r, err := c.Cmd("RETR", "/pub/hello.txt"); err != nil || r.Code != 150 {
		t.Fatalf("RETR: %v %v", r, err)
	}
	content := make([]byte, 64)
	n, _ := dc.Read(content)
	dc.Close()
	c.ReadReply()

	dc = env.openPassive(t, c)
	c.Cmd("STOR", "/incoming/up.bin")
	dc.Write([]byte("payload"))
	dc.Close()
	c.ReadReply()
	c.Cmd("QUIT", "")
	time.Sleep(50 * time.Millisecond)
	xs.Close()
	js.Close()

	lines := strings.Split(strings.TrimSpace(xfer.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("xferlog recorded %d transfers, want 2:\n%s", len(lines), xfer.String())
	}
	if !strings.Contains(lines[0], " o a anonymous ftp 0 * c") || !strings.Contains(lines[0], "/pub/hello.txt") {
		t.Errorf("download line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[0], " 11 ") || n != 11 {
		t.Errorf("download size mismatch: wire %d bytes, line %q", n, lines[0])
	}
	if !strings.Contains(lines[1], " 7 /incoming/up.bin b _ i a ") {
		t.Errorf("upload line malformed: %q", lines[1])
	}
	if got := strings.Count(audit.String(), `"kind":"command"`); got < 4 {
		t.Errorf("JSONL audit recorded %d commands, want the full session", got)
	}
}
