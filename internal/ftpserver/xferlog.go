package ftpserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Audit sinks behind the Observer hook. Real-world FTP forensics — the
// paper's malicious-use evidence included — leans on wu-ftpd's xferlog,
// the de facto transfer-log interchange format every major Unix FTP daemon
// adopted. XferlogSink writes that format; JSONLSink writes the full event
// stream as JSON lines for machine consumption; MultiObserver fans one
// session's events to both (and to any other Observer, e.g. a honeypot
// recorder) without the server knowing how many sinks listen.

// XferlogSink records uploads and downloads in wu-ftpd xferlog(5) format,
// one line per completed transfer:
//
//	DDD MMM dd hh:mm:ss YYYY transfer-time remote-host file-size filename
//	transfer-type special-action-flag direction access-mode username
//	service-name authentication-method authenticated-user-id completion-status
//
// The simulation does not time individual transfers, so transfer-time is
// always 0; every transfer is binary ("b"), unprocessed ("_"), and complete
// ("c"), matching what the enumerator and attacker fleets actually do.
// Safe for concurrent sessions.
type XferlogSink struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewXferlogSink writes xferlog lines to w.
func NewXferlogSink(w io.Writer) *XferlogSink {
	return &XferlogSink{w: bufio.NewWriter(w)}
}

// Event implements Observer: transfers are logged, everything else ignored.
func (s *XferlogSink) Event(e Event) {
	var direction string
	switch e.Kind {
	case EventDownload:
		direction = "o" // outgoing from the server
	case EventUpload:
		direction = "i"
	default:
		return
	}
	access, user := "r", e.User
	if user == "" || user == "anonymous" || user == "ftp" {
		access = "a"
		if user == "" {
			user = "ftp"
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s 0 %s %d %s b _ %s %s %s ftp 0 * c\n",
		e.Time.Format("Mon Jan _2 15:04:05 2006"),
		e.RemoteIP, e.Bytes, xferlogPath(e.Path), direction, access, user)
}

// Close flushes buffered lines.
func (s *XferlogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// xferlogPath sanitizes a filename the way wu-ftpd does: whitespace and
// control bytes become underscores so the space-separated line stays
// parseable no matter what an anonymous uploader named their file.
func xferlogPath(p string) string {
	if p == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r <= ' ' || r == 0x7f {
			return '_'
		}
		return r
	}, p)
}

// auditEvent is JSONLSink's wire form of one Event.
type auditEvent struct {
	Time     time.Time `json:"time"`
	Kind     string    `json:"kind"`
	RemoteIP string    `json:"remote_ip,omitempty"`
	User     string    `json:"user,omitempty"`
	Pass     string    `json:"pass,omitempty"`
	Command  string    `json:"command,omitempty"`
	Arg      string    `json:"arg,omitempty"`
	Path     string    `json:"path,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	Bytes    int64     `json:"bytes,omitempty"`
}

// JSONLSink records every session event as one JSON line — the
// machine-readable audit trail (honeypot analysis reads credentials and
// command sequences from exactly this stream). Safe for concurrent
// sessions.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink writes JSON event lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Event implements Observer.
func (s *JSONLSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(auditEvent{
		Time:     e.Time,
		Kind:     e.Kind.String(),
		RemoteIP: e.RemoteIP,
		User:     e.User,
		Pass:     e.Pass,
		Command:  e.Command,
		Arg:      e.Arg,
		Path:     e.Path,
		Detail:   e.Detail,
		Bytes:    e.Bytes,
	})
}

// Close flushes buffered lines.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// multiObserver fans events to several observers in order.
type multiObserver []Observer

func (m multiObserver) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// MultiObserver combines observers into one; nils are dropped. Zero or one
// usable observer short-circuits to exactly that value, so the hot-path
// nil check in session.observe keeps working when nothing listens.
func MultiObserver(obs ...Observer) Observer {
	var m multiObserver
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}
