package ftpserver

import (
	"net"
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter: tokens refill continuously at rate
// per second up to burst, and Take may drive the balance negative, returning
// how long the caller must wait before proceeding. That form suits bandwidth
// shaping — a transfer writes a chunk, learns its debt, and sleeps it off —
// while TryTake suits operation caps that reject instead of queueing.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket refilling at rate tokens/second with the
// given burst capacity. A rate of zero or less means unlimited: Take never
// waits and TryTake never fails.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// refillLocked advances the balance to now. Caller holds mu.
func (b *TokenBucket) refillLocked(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take consumes n tokens unconditionally and returns how long the caller
// must wait for the balance to recover to zero — the shaping discipline:
// debt is always granted, and the debtor sleeps.
func (b *TokenBucket) Take(n int64) time.Duration {
	if b == nil || b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// TryTake consumes n tokens only if the full amount is available now.
func (b *TokenBucket) TryTake(n int64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(time.Now())
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// shapeChunk bounds how many bytes one shaped I/O consumes at once, so the
// induced sleeps stay short and pause/resume granularity stays fine even at
// low per-session rates.
const shapeChunk = 32 << 10

// shapedConn wraps a data connection with per-session and global token
// buckets. Either bucket may be nil (no cap at that scope). Writes and reads
// are chunked; the debt from both buckets is served with one sleep per
// chunk, so a session is throttled by whichever scope is tighter.
type shapedConn struct {
	net.Conn
	session *TokenBucket
	global  *TokenBucket
	touch   func() // keeps the idle reaper off active transfers; may be nil
}

// shapeData wraps dc if any bucket is configured; otherwise returns dc
// unchanged so the unshaped path stays wrapper-free.
func shapeData(dc net.Conn, session, global *TokenBucket, touch func()) net.Conn {
	if session == nil && global == nil && touch == nil {
		return dc
	}
	return &shapedConn{Conn: dc, session: session, global: global, touch: touch}
}

// pay charges n bytes to both buckets and sleeps off the larger debt.
func (c *shapedConn) pay(n int) {
	wait := c.session.Take(int64(n))
	if w := c.global.Take(int64(n)); w > wait {
		wait = w
	}
	if wait > 0 {
		time.Sleep(wait)
	}
	if c.touch != nil {
		c.touch()
	}
}

func (c *shapedConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > shapeChunk {
			chunk = chunk[:shapeChunk]
		}
		c.pay(len(chunk))
		n, err := c.Conn.Write(chunk)
		total += n
		if err != nil {
			return total, err
		}
		p = p[n:]
	}
	return total, nil
}

func (c *shapedConn) Read(p []byte) (int, error) {
	if len(p) > shapeChunk {
		p = p[:shapeChunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.pay(n)
	}
	return n, err
}
