package ftpserver

import (
	"crypto/tls"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

const (
	serverIPStr = "5.6.7.8"
	clientIPStr = "1.2.3.4"
)

func testFS() *vfs.FS {
	root := vfs.NewDir("/", vfs.Perm755)
	pub := root.Add(vfs.NewDir("pub", vfs.Perm755))
	pub.Add(vfs.NewFileContent("hello.txt", vfs.Perm644, []byte("hello world")))
	pub.Add(vfs.NewFileContent("secret.key", vfs.Perm600, []byte("PRIVATE")))
	root.Add(vfs.NewDir("incoming", vfs.Perm777))
	return vfs.New(root)
}

type testEnv struct {
	nw       *simnet.Network
	serverIP simnet.IP
	clientIP simnet.IP
}

// newEnv wires a server config into a fresh simulated network.
func newEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	env := &testEnv{
		serverIP: simnet.MustParseIP(serverIPStr),
		clientIP: simnet.MustParseIP(clientIPStr),
	}
	if cfg.PublicIP == 0 {
		cfg.PublicIP = env.serverIP
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(env.serverIP, 21, srv.SimHandler())
	env.nw = simnet.NewNetwork(provider)
	return env
}

// dial opens a control connection and consumes the banner.
func (env *testEnv) dial(t *testing.T) (*ftp.Conn, ftp.Reply) {
	t.Helper()
	nc, err := env.nw.DialFrom(env.clientIP, env.serverIP, 21)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	banner, err := c.ReadReply()
	if err != nil {
		t.Fatalf("banner: %v", err)
	}
	return c, banner
}

// login performs an anonymous login and fails the test on error.
func login(t *testing.T, c *ftp.Conn) {
	t.Helper()
	r, err := c.Cmd("USER", "anonymous")
	if err != nil || r.Code != ftp.CodeNeedPassword {
		t.Fatalf("USER: %v %v", r, err)
	}
	r, err = c.Cmd("PASS", "research@example.org")
	if err != nil || r.Code != ftp.CodeLoggedIn {
		t.Fatalf("PASS: %v %v", r, err)
	}
}

// openPassive negotiates PASV and dials the advertised endpoint.
func (env *testEnv) openPassive(t *testing.T, c *ftp.Conn) net.Conn {
	t.Helper()
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		t.Fatalf("PASV: %v %v", r, err)
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := env.nw.Dial(env.clientIP, hp.Addr())
	if err != nil {
		t.Fatalf("data dial: %v", err)
	}
	t.Cleanup(func() { dc.Close() })
	return dc
}

func anonConfig() Config {
	return Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             testFS(),
		HostName:       "test.example.org",
		AllowAnonymous: true,
	}
}

func TestBannerAndLogin(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, banner := env.dial(t)
	if banner.Code != ftp.CodeReady || !strings.Contains(banner.Text(), "ProFTPD 1.3.5") {
		t.Fatalf("banner = %+v", banner)
	}
	if !strings.Contains(banner.Text(), serverIPStr) {
		t.Errorf("ProFTPD banner should embed host IP: %q", banner.Text())
	}
	login(t, c)
	r, err := c.Cmd("SYST", "")
	if err != nil || r.Code != ftp.CodeSystem || !strings.Contains(r.Text(), "UNIX") {
		t.Errorf("SYST: %+v %v", r, err)
	}
	r, err = c.Cmd("PWD", "")
	if err != nil || r.Code != ftp.CodePathCreated || !strings.Contains(r.Text(), "/") {
		t.Errorf("PWD: %+v %v", r, err)
	}
}

func TestAnonymousDenied(t *testing.T) {
	cfg := anonConfig()
	cfg.AllowAnonymous = false
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	r, err := c.Cmd("USER", "anonymous")
	if err != nil || r.Code != ftp.CodeNotLoggedIn {
		t.Fatalf("USER anonymous: %+v %v", r, err)
	}
}

func TestRealUserLogin(t *testing.T) {
	cfg := anonConfig()
	cfg.AllowAnonymous = false
	cfg.Users = map[string]string{"admin": "admin123"}
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	if r, _ := c.Cmd("USER", "admin"); r.Code != ftp.CodeNeedPassword {
		t.Fatalf("USER admin: %+v", r)
	}
	if r, _ := c.Cmd("PASS", "wrong"); r.Code != ftp.CodeNotLoggedIn {
		t.Fatalf("wrong PASS: %+v", r)
	}
	if r, _ := c.Cmd("USER", "admin"); r.Code != ftp.CodeNeedPassword {
		t.Fatalf("USER retry: %+v", r)
	}
	if r, _ := c.Cmd("PASS", "admin123"); r.Code != ftp.CodeLoggedIn {
		t.Fatalf("right PASS: %+v", r)
	}
}

func TestCommandsRequireLogin(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	for _, verb := range []string{"PWD", "LIST", "RETR", "CWD", "PASV"} {
		r, err := c.Cmd(verb, "x")
		if err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
		if r.Code != ftp.CodeNotLoggedIn {
			t.Errorf("%s before login = %d, want 530", verb, r.Code)
		}
	}
}

func TestFeatAndHelp(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	r, err := c.Cmd("FEAT", "")
	if err != nil || r.Code != ftp.FeatureListCode {
		t.Fatalf("FEAT: %+v %v", r, err)
	}
	if !strings.Contains(r.Text(), "UTF8") || !strings.Contains(r.Text(), "AUTH TLS") {
		t.Errorf("FEAT body: %q", r.Text())
	}
	r, err = c.Cmd("HELP", "")
	if err != nil || r.Code != ftp.CodeHelp {
		t.Fatalf("HELP: %+v %v", r, err)
	}
}

func TestPassiveList(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	r, err := c.Cmd("LIST", "/pub")
	if err != nil || !r.Preliminary() {
		t.Fatalf("LIST: %+v %v", r, err)
	}
	body, err := io.ReadAll(dc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hello.txt") || !strings.Contains(string(body), "secret.key") {
		t.Errorf("listing body: %q", body)
	}
	r, err = c.ReadReply()
	if err != nil || r.Code != ftp.CodeTransferOK {
		t.Fatalf("completion: %+v %v", r, err)
	}
}

func TestNLST(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("NLST", "/pub"); !r.Preliminary() {
		t.Fatalf("NLST: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if string(body) != "hello.txt\r\nsecret.key\r\n" {
		t.Errorf("NLST body: %q", body)
	}
	c.ReadReply()
}

func TestRetr(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("RETR", "/pub/hello.txt"); !r.Preliminary() {
		t.Fatalf("RETR: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if string(body) != "hello world" {
		t.Errorf("RETR body: %q", body)
	}
	if r, _ := c.ReadReply(); r.Code != ftp.CodeTransferOK {
		t.Errorf("completion: %+v", r)
	}
}

func TestRetrPermissionDenied(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	env.openPassive(t, c)
	r, _ := c.Cmd("RETR", "/pub/secret.key")
	if r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("RETR 600 file = %+v, want 550", r)
	}
}

func TestCwdAndRelativePaths(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("CWD", "pub"); r.Code != ftp.CodeFileOK {
		t.Fatalf("CWD: %+v", r)
	}
	if r, _ := c.Cmd("PWD", ""); !strings.Contains(r.Text(), "/pub") {
		t.Fatalf("PWD after CWD: %+v", r)
	}
	if r, _ := c.Cmd("CWD", "nonexistent"); r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("CWD bad: %+v", r)
	}
	if r, _ := c.Cmd("CDUP", ""); r.Code != ftp.CodeFileOK {
		t.Fatalf("CDUP: %+v", r)
	}
	if r, _ := c.Cmd("PWD", ""); !strings.Contains(r.Text(), `"/"`) {
		t.Fatalf("PWD after CDUP: %+v", r)
	}
}

func TestStorDeniedReadOnly(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	r, _ := c.Cmd("STOR", "/incoming/x.txt")
	if r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("STOR on read-only anon = %+v, want 550", r)
	}
}

func TestStorAndRetrWritable(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("STOR", "/incoming/w0000000t.txt"); !r.Preliminary() {
		t.Fatalf("STOR: %+v", r)
	}
	dc.Write([]byte("Anonymous"))
	dc.Close()
	if r, _ := c.ReadReply(); r.Code != ftp.CodeTransferOK {
		t.Fatalf("STOR completion: %+v", r)
	}

	// ProFTPD profile has no approval gate: file is retrievable.
	dc2 := env.openPassive(t, c)
	if r, _ := c.Cmd("RETR", "/incoming/w0000000t.txt"); !r.Preliminary() {
		t.Fatalf("RETR after STOR: %+v", r)
	}
	body, _ := io.ReadAll(dc2)
	if string(body) != "Anonymous" {
		t.Errorf("round trip body: %q", body)
	}
	c.ReadReply()
}

func TestPureFTPdApprovalGate(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyPureFTPd1036)
	cfg.AnonWritable = true
	cfg.Cert = nil
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("STOR", "/incoming/probe.txt"); !r.Preliminary() {
		t.Fatalf("STOR: %+v", r)
	}
	dc.Write([]byte("test"))
	dc.Close()
	c.ReadReply()

	env.openPassive(t, c)
	r, _ := c.Cmd("RETR", "/incoming/probe.txt")
	if r.Code != ftp.CodeFileUnavailable || !strings.Contains(r.Text(), "has not") {
		t.Fatalf("RETR of anon upload = %+v, want Pure-FTPd approval refusal", r)
	}
}

func TestUploadRenameSuffix(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyPureFTPd1036)
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	for i := 0; i < 2; i++ {
		dc := env.openPassive(t, c)
		if r, _ := c.Cmd("STOR", "/incoming/name"); !r.Preliminary() {
			t.Fatalf("STOR %d: %+v", i, r)
		}
		dc.Write([]byte("x"))
		dc.Close()
		c.ReadReply()
	}
	fs := cfg.FS
	if fs.Lookup("/incoming/name") == nil || fs.Lookup("/incoming/name.1") == nil {
		t.Error("upload-rename suffix files missing")
	}
}

func TestMkdDeleRmd(t *testing.T) {
	cfg := anonConfig()
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("MKD", "/incoming/150618120000p"); r.Code != ftp.CodePathCreated {
		t.Fatalf("MKD: %+v", r)
	}
	if r, _ := c.Cmd("RMD", "/incoming/150618120000p"); r.Code != ftp.CodeFileOK {
		t.Fatalf("RMD: %+v", r)
	}
	if r, _ := c.Cmd("DELE", "/pub/hello.txt"); r.Code != ftp.CodeFileOK {
		t.Fatalf("DELE: %+v", r)
	}
	if r, _ := c.Cmd("DELE", "/pub/hello.txt"); r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("DELE again: %+v", r)
	}
}

func TestSizeAndMdtm(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("SIZE", "/pub/hello.txt"); r.Code != 213 || r.Text() != "11" {
		t.Fatalf("SIZE: %+v", r)
	}
	if r, _ := c.Cmd("SIZE", "/pub"); r.Code != ftp.CodeFileUnavailable {
		t.Fatalf("SIZE dir: %+v", r)
	}
	if r, _ := c.Cmd("MDTM", "/pub/hello.txt"); r.Code != 213 || len(r.Text()) != 14 {
		t.Fatalf("MDTM: %+v", r)
	}
}

func TestPortValidationEnforced(t *testing.T) {
	env := newEnv(t, anonConfig()) // ProFTPD validates PORT
	c, _ := env.dial(t)
	login(t, c)
	// Claim a third-party IP.
	r, _ := c.Cmd("PORT", "9,9,9,9,100,0")
	if r.Code != ftp.CodeCmdUnrecognized {
		t.Fatalf("PORT with foreign IP = %+v, want 500", r)
	}
	// The client's own IP is accepted.
	r, _ = c.Cmd("PORT", "1,2,3,4,100,0")
	if r.Code != ftp.CodeOK {
		t.Fatalf("PORT with own IP = %+v, want 200", r)
	}
}

func TestPortBounce(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyHostedHomePL) // no PORT validation
	env := newEnv(t, cfg)

	// A third-party collector listens elsewhere in the network.
	thirdParty := simnet.MustParseIP("9.9.9.9")
	l, err := env.nw.Listen(thirdParty, 4000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := make(chan string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf, _ := io.ReadAll(conn)
		got <- string(buf)
	}()

	c, _ := env.dial(t)
	login(t, c)
	if r, _ := c.Cmd("PORT", "9,9,9,9,15,160"); r.Code != ftp.CodeOK { // port 4000
		t.Fatalf("PORT: %+v", r)
	}
	if r, _ := c.Cmd("LIST", "/pub"); !r.Preliminary() {
		t.Fatalf("LIST: %+v", r)
	}
	if r, _ := c.ReadReply(); r.Code != ftp.CodeTransferOK {
		t.Fatalf("LIST completion: %+v", r)
	}
	select {
	case body := <-got:
		if !strings.Contains(body, "hello.txt") {
			t.Errorf("bounced listing: %q", body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("third party never received the bounced data")
	}
}

func TestPASVNATLeak(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyQNAPNAS)
	cfg.InternalIP = simnet.MustParseIP("192.168.1.50")
	env := newEnv(t, cfg)
	c, banner := env.dial(t)
	if !strings.Contains(banner.Text(), "192.168.1.50") {
		t.Errorf("NAT-ed device banner should leak internal IP: %q", banner.Text())
	}
	login(t, c)
	r, _ := c.Cmd("PASV", "")
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	if hp.IPString() != "192.168.1.50" {
		t.Errorf("PASV advertised %s, want leaked internal IP", hp.IPString())
	}
	// The data port is real on the public IP: connecting to the control
	// peer's address at the advertised port works (smart-client recovery).
	dc, err := env.nw.DialFrom(env.clientIP, env.serverIP, hp.Port)
	if err != nil {
		t.Fatalf("data dial to public IP: %v", err)
	}
	dc.Close()
}

func TestAuthTLS(t *testing.T) {
	pool, err := certs.GeneratePool(3, []certs.Spec{
		{Name: "c", CommonName: "*.example.org", SelfSigned: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := anonConfig()
	cfg.Cert = pool.Get("c")
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	r, err := c.Cmd("AUTH", "TLS")
	if err != nil || r.Code != ftp.CodeAuthOK {
		t.Fatalf("AUTH TLS: %+v %v", r, err)
	}
	tc := tls.Client(c.NetConn(), &tls.Config{InsecureSkipVerify: true})
	if err := tc.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	state := tc.ConnectionState()
	if len(state.PeerCertificates) == 0 ||
		state.PeerCertificates[0].Subject.CommonName != "*.example.org" {
		t.Fatalf("peer certs: %+v", state.PeerCertificates)
	}
	// The control channel continues inside TLS.
	c.Upgrade(tc)
	login(t, c)
}

func TestAuthTLSUnavailable(t *testing.T) {
	env := newEnv(t, anonConfig()) // no cert
	c, _ := env.dial(t)
	r, _ := c.Cmd("AUTH", "TLS")
	if r.Code != ftp.CodeTLSNotAvailable {
		t.Fatalf("AUTH without cert = %+v, want 534", r)
	}
}

func TestRequireTLS(t *testing.T) {
	pool, err := certs.GeneratePool(3, []certs.Spec{
		{Name: "c", CommonName: "secure.example.org", SelfSigned: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := anonConfig()
	cfg.Cert = pool.Get("c")
	cfg.RequireTLS = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	r, _ := c.Cmd("USER", "anonymous")
	if r.Code != ftp.CodeNotLoggedIn || !strings.Contains(r.Text(), "TLS") {
		t.Fatalf("USER without TLS = %+v, want TLS-required 530", r)
	}
}

func TestRequestLimit(t *testing.T) {
	cfg := anonConfig()
	cfg.RequestLimit = 3
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	for i := 0; i < 3; i++ {
		if r, err := c.Cmd("NOOP", ""); err != nil || r.Code != ftp.CodeOK {
			t.Fatalf("NOOP %d: %+v %v", i, r, err)
		}
	}
	r, err := c.Cmd("NOOP", "")
	if err != nil || r.Code != ftp.CodeServiceNotAvail {
		t.Fatalf("over-limit NOOP: %+v %v", r, err)
	}
	// Connection is then closed.
	if _, err := c.Cmd("NOOP", ""); err == nil {
		t.Fatal("session survived past 421")
	}
}

func TestUnknownCommand(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	r, _ := c.Cmd("XYZZY", "")
	if r.Code != ftp.CodeCmdUnrecognized {
		t.Fatalf("XYZZY = %+v", r)
	}
}

func TestListWithFlags(t *testing.T) {
	env := newEnv(t, anonConfig())
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("LIST", "-la /pub"); !r.Preliminary() {
		t.Fatalf("LIST -la: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if !strings.Contains(string(body), "hello.txt") {
		t.Errorf("flagged listing: %q", body)
	}
	c.ReadReply()
}

func TestDOSListingStyle(t *testing.T) {
	cfg := anonConfig()
	cfg.Pers = personality.ByKey(personality.KeyIIS75)
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("LIST", "/pub"); !r.Preliminary() {
		t.Fatalf("LIST: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if strings.Contains(string(body), "rwx") || !strings.Contains(string(body), "hello.txt") {
		t.Errorf("IIS listing should be DOS style: %q", body)
	}
	c.ReadReply()
	// Windows path semantics are case-insensitive.
	if r, _ := c.Cmd("CWD", "/PUB"); r.Code != ftp.CodeFileOK {
		t.Fatalf("case-insensitive CWD: %+v", r)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{FS: testFS()}); err == nil {
		t.Error("missing personality accepted")
	}
	if _, err := New(Config{Pers: personality.ByKey(personality.KeyProFTPD135)}); err == nil {
		t.Error("missing FS accepted")
	}
	if _, err := New(Config{
		Pers: personality.ByKey(personality.KeyProFTPD135), FS: testFS(), RequireTLS: true,
	}); err == nil {
		t.Error("RequireTLS without cert accepted")
	}
}

// TestServeTCPInterop drives the engine over real TCP sockets: the same
// session logic must work outside the simulation.
func TestServeTCPInterop(t *testing.T) {
	srv, err := New(anonConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeTCP(conn)
		}
	}()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 5 * time.Second
	if r, err := c.ReadReply(); err != nil || r.Code != ftp.CodeReady {
		t.Fatalf("banner: %+v %v", r, err)
	}
	login(t, c)

	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		t.Fatalf("PASV: %+v %v", r, err)
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := net.Dial("tcp", hp.Addr())
	if err != nil {
		t.Fatalf("data dial: %v", err)
	}
	defer dc.Close()
	if r, _ := c.Cmd("RETR", "/pub/hello.txt"); !r.Preliminary() {
		t.Fatalf("RETR: %+v", r)
	}
	body, _ := io.ReadAll(dc)
	if string(body) != "hello world" {
		t.Errorf("TCP RETR body: %q", body)
	}
}

// recorder collects observer events for honeypot-style assertions.
type recorder struct {
	events []Event
}

func (r *recorder) Event(e Event) { r.events = append(r.events, e) }

func (r *recorder) kinds() map[EventKind]int {
	m := make(map[EventKind]int)
	for _, e := range r.events {
		m[e.Kind]++
	}
	return m
}

func TestObserverEvents(t *testing.T) {
	rec := &recorder{}
	cfg := anonConfig()
	cfg.Observer = rec
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)
	c.Cmd("PORT", "9,9,9,9,1,1") // bounce attempt (rejected)
	dc := env.openPassive(t, c)
	c.Cmd("STOR", "/incoming/x")
	dc.Write([]byte("y"))
	dc.Close()
	c.ReadReply()
	c.Cmd("QUIT", "")
	// Give the server goroutine a moment to finish its disconnect event.
	time.Sleep(50 * time.Millisecond)

	k := rec.kinds()
	if k[EventConnect] != 1 || k[EventLoginOK] != 1 {
		t.Errorf("events: %+v", k)
	}
	if k[EventPortBounceAttempt] != 1 {
		t.Errorf("bounce attempts: %+v", k)
	}
	if k[EventUpload] != 1 {
		t.Errorf("uploads: %+v", k)
	}
}

// TestObserverDeleteEvents: EventDelete fires only when a DELE actually
// removes a path — failed deletes and directory removals don't count, so
// the honeypot's uploads/deletes columns stay comparable.
func TestObserverDeleteEvents(t *testing.T) {
	rec := &recorder{}
	stamp := time.Unix(1_450_000_000, 0)
	cfg := anonConfig()
	cfg.Observer = rec
	cfg.AnonWritable = true
	cfg.Now = func() time.Time { return stamp }
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	dc := env.openPassive(t, c)
	if r, _ := c.Cmd("STOR", "/incoming/marker"); !r.Preliminary() {
		t.Fatalf("STOR: %+v", r)
	}
	dc.Write([]byte("y"))
	dc.Close()
	c.ReadReply()

	if r, _ := c.Cmd("DELE", "/incoming/no-such-file"); !r.Negative() {
		t.Fatalf("DELE of missing file: %+v", r)
	}
	if r, _ := c.Cmd("DELE", "/incoming/marker"); r.Negative() {
		t.Fatalf("DELE of marker: %+v", r)
	}
	if r, _ := c.Cmd("MKD", "/incoming/sub"); r.Negative() {
		t.Fatalf("MKD: %+v", r)
	}
	if r, _ := c.Cmd("RMD", "/incoming/sub"); r.Negative() {
		t.Fatalf("RMD: %+v", r)
	}

	k := rec.kinds()
	if k[EventDelete] != 1 {
		t.Errorf("EventDelete count = %d, want 1 (only the successful DELE): %+v", k[EventDelete], k)
	}
	if got := EventDelete.String(); got != "delete" {
		t.Errorf("EventDelete.String() = %q", got)
	}
	for _, e := range rec.events {
		if !e.Time.Equal(stamp) {
			t.Errorf("event %v stamped %v, want injected clock time %v", e.Kind, e.Time, stamp)
			break
		}
	}
}
