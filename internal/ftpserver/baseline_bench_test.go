package ftpserver

import (
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

// BenchmarkSessionCommands measures steady-state per-command cost of the
// session loop over simnet: a logged-in session cycling NOOP, PWD, TYPE,
// SIZE — the control-channel hot path with no data transfers.
func BenchmarkSessionCommands(b *testing.B) {
	srv, err := New(Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             testFS(),
		HostName:       "bench.example.org",
		AllowAnonymous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	serverIP := simnet.MustParseIP("5.6.7.8")
	clientIP := simnet.MustParseIP("1.2.3.4")
	provider := simnet.NewStaticProvider()
	provider.Add(serverIP, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	nc, err := nw.DialFrom(clientIP, serverIP, 21)
	if err != nil {
		b.Fatal(err)
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = 10 * time.Second
	if _, err := c.ReadReply(); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Cmd("USER", "anonymous"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Cmd("PASS", "x@y"); err != nil {
		b.Fatal(err)
	}

	cmds := [][2]string{{"NOOP", ""}, {"PWD", ""}, {"TYPE", "I"}, {"SIZE", "/pub/hello.txt"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := cmds[i%len(cmds)]
		if _, err := c.Cmd(cmd[0], cmd[1]); err != nil {
			b.Fatal(err)
		}
	}
}
