package ftpserver

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
)

// benchServer builds a governed, metrics-instrumented server backed by the
// in-memory driver — the configuration the 10k-session target is specified
// against.
func benchServer(b *testing.B, maxConns int) (*Server, *obs.Registry) {
	b.Helper()
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		Driver:         MemDriverFromFS(testFS()),
		HostName:       "bench.example.org",
		AllowAnonymous: true,
		MaxConns:       maxConns,
		IdleTimeout:    2 * time.Minute,
		Metrics:        reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv, reg
}

// benchSession is one ramped-up, logged-in control connection.
type benchSession struct {
	nc net.Conn
	c  *ftp.Conn
}

func rampSession(nc net.Conn) (*benchSession, error) {
	c := ftp.NewConn(nc)
	c.Timeout = 30 * time.Second
	if _, err := c.ReadReply(); err != nil {
		return nil, fmt.Errorf("banner: %w", err)
	}
	if _, err := c.Cmd("USER", "anonymous"); err != nil {
		return nil, fmt.Errorf("USER: %w", err)
	}
	r, err := c.Cmd("PASS", "bench@example.org")
	if err != nil {
		return nil, fmt.Errorf("PASS: %w", err)
	}
	if r.Code != ftp.CodeLoggedIn {
		return nil, fmt.Errorf("login rejected: %d %s", r.Code, r.Text())
	}
	return &benchSession{nc: nc, c: c}, nil
}

// runConcurrent ramps sessions up outside the timer, then times b.N
// four-command cycles spread across all of them, every session active
// concurrently. dial must yield a fresh control connection per call.
func runConcurrent(b *testing.B, sessions int, reg *obs.Registry, dial func(i int) (net.Conn, error)) {
	// Ramp with bounded dial concurrency so 10k simultaneous connects do
	// not themselves become the bottleneck (or a listen-backlog storm).
	sem := make(chan struct{}, 256)
	ramped := make([]*benchSession, sessions)
	var wg sync.WaitGroup
	var rampErr atomic.Value
	for i := range ramped {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			nc, err := dial(i)
			if err != nil {
				rampErr.Store(fmt.Errorf("dial %d: %w", i, err))
				return
			}
			s, err := rampSession(nc)
			if err != nil {
				nc.Close()
				rampErr.Store(fmt.Errorf("ramp %d: %w", i, err))
				return
			}
			ramped[i] = s
		}(i)
	}
	wg.Wait()
	if err := rampErr.Load(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, s := range ramped {
			s.nc.Close()
		}
	}()

	cmds := [][2]string{{"NOOP", ""}, {"PWD", ""}, {"TYPE", "I"}, {"SIZE", "/pub/hello.txt"}}
	jobs := make(chan int, sessions)
	var benchErr atomic.Value
	var done sync.WaitGroup
	for _, s := range ramped {
		done.Add(1)
		go func(s *benchSession) {
			defer done.Done()
			for j := range jobs {
				cmd := cmds[j%len(cmds)]
				if _, err := s.c.Cmd(cmd[0], cmd[1]); err != nil {
					benchErr.Store(fmt.Errorf("%s: %w", cmd[0], err))
					return
				}
			}
		}(s)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		jobs <- i
	}
	close(jobs)
	done.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if err := benchErr.Load(); err != nil {
		b.Fatal(err)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "cmds/s")
	}
	if sheds := reg.Counter("ftpserver.shed").Load(); sheds != 0 {
		b.Fatalf("governor shed %d connections during the benchmark", sheds)
	}
}

// tcpSessionBudget bounds real-TCP session counts by the process FD limit:
// each in-process session costs two descriptors (client + server end), and
// listeners, sockets mid-accept, and test plumbing need headroom.
func tcpSessionBudget() (int, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	return (int(lim.Cur) - 300) / 2, nil
}

// BenchmarkServerConcurrentSessions holds the named session count open —
// every session logged in and issuing commands — and measures aggregate
// command throughput. The simnet variant isolates engine cost (no kernel
// sockets, no FD ceiling); the tcp variant exercises the same engine over
// loopback TCP, with the session count clamped to the process FD budget
// when the limit demands it.
func BenchmarkServerConcurrentSessions(b *testing.B) {
	for _, tier := range []struct {
		name     string
		sessions int
	}{
		{"sessions-100", 100},
		{"sessions-1k", 1000},
		{"sessions-10k", 10000},
	} {
		b.Run(tier.name, func(b *testing.B) {
			b.Run("simnet", func(b *testing.B) {
				srv, reg := benchServer(b, tier.sessions+10)
				serverIP := simnet.MustParseIP("5.6.7.8")
				provider := simnet.NewStaticProvider()
				provider.Add(serverIP, 21, srv.SimHandler())
				nw := simnet.NewNetwork(provider)
				runConcurrent(b, tier.sessions, reg, func(i int) (net.Conn, error) {
					// Distinct client addresses, as a real crawl sees.
					ip := simnet.IPFromOctets(10, byte(i>>16), byte(i>>8), byte(i))
					return nw.DialFrom(ip, serverIP, 21)
				})
			})
			b.Run("tcp", func(b *testing.B) {
				sessions := tier.sessions
				budget, err := tcpSessionBudget()
				if err != nil {
					b.Fatal(err)
				}
				if sessions > budget {
					b.Logf("clamping %d sessions to %d (RLIMIT_NOFILE budget)", sessions, budget)
					sessions = budget
				}
				srv, reg := benchServer(b, sessions+10)
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				go srv.Serve(l)
				addr := l.Addr().String()
				runConcurrent(b, sessions, reg, func(int) (net.Conn, error) {
					return net.DialTimeout("tcp", addr, 30*time.Second)
				})
			})
		})
	}
}
