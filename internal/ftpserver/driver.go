package ftpserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ftpcloud/internal/vfs"
)

// Driver abstracts the storage backend a session operates against, so the
// session loop never reaches into a concrete filesystem. The engine ships a
// vfs-backed driver (the simulated worlds), a flat in-memory driver tuned
// for high session concurrency, and composable quota/rate-limit wrappers —
// mirroring the pluggable-backend architecture production FTP server
// libraries are built around.
//
// Paths are always absolute and pre-cleaned (vfs.Join output). Drivers must
// be safe for concurrent use by many sessions.
type Driver interface {
	// Lookup resolves a path to its node, or nil when absent.
	Lookup(p string) *vfs.Node
	// List returns the sorted entries of the directory at p (or the node
	// itself for a file path).
	List(p string) ([]*vfs.Node, error)
	// Store writes a file. When replace is false and the name is taken,
	// the driver may rename with an incrementing suffix (vfs semantics).
	Store(p string, content []byte, perm vfs.Mode, replace bool, owner string, anonUpload bool) (*vfs.Node, error)
	// Delete removes a file or empty directory.
	Delete(p string) error
	// Mkdir creates a directory; the parent must exist.
	Mkdir(p string, perm vfs.Mode) (*vfs.Node, error)
}

// Sentinel errors drivers and wrappers report; the session loop maps them
// onto the appropriate reply codes (552 for quota, 450 for rate limiting).
var (
	// ErrQuotaExceeded marks a write rejected by a QuotaDriver.
	ErrQuotaExceeded = errors.New("ftpserver: storage quota exceeded")
	// ErrRateLimited marks an operation rejected by a RateLimitedDriver.
	ErrRateLimited = errors.New("ftpserver: operation rate limit exceeded")
)

// VFSDriver adapts a *vfs.FS tree — the simulated-world backend every
// personality served before the driver split, now just one implementation.
type VFSDriver struct {
	FS *vfs.FS
}

// NewVFSDriver wraps an existing filesystem tree.
func NewVFSDriver(fs *vfs.FS) *VFSDriver { return &VFSDriver{FS: fs} }

func (d *VFSDriver) Lookup(p string) *vfs.Node        { return d.FS.Lookup(p) }
func (d *VFSDriver) List(p string) ([]*vfs.Node, error) { return d.FS.List(p) }

func (d *VFSDriver) Store(p string, content []byte, perm vfs.Mode, replace bool, owner string, anonUpload bool) (*vfs.Node, error) {
	return d.FS.PutUpload(p, content, perm, replace, owner, anonUpload)
}

func (d *VFSDriver) Delete(p string) error { return d.FS.Delete(p) }

func (d *VFSDriver) Mkdir(p string, perm vfs.Mode) (*vfs.Node, error) {
	return d.FS.Mkdir(p, perm)
}

// MemDriver is a flat in-memory backend: one map from absolute path to node
// plus a per-directory child index with cached sorted listings. Listings are
// the hot read on a loaded server; caching the sorted slice makes LIST a
// read-locked map hit instead of a sort per request, which is what lets the
// 10k-session benchmark spend its cycles on the protocol rather than the
// backend.
type MemDriver struct {
	mu       sync.RWMutex
	nodes    map[string]*vfs.Node            // path → node
	children map[string]map[string]*vfs.Node // dir path → name → node
	sorted   map[string][]*vfs.Node          // dir path → cached sorted entries
}

// NewMemDriver builds an empty in-memory backend with a world-readable root.
func NewMemDriver() *MemDriver {
	d := &MemDriver{
		nodes:    make(map[string]*vfs.Node),
		children: make(map[string]map[string]*vfs.Node),
		sorted:   make(map[string][]*vfs.Node),
	}
	root := vfs.NewDir("/", vfs.Perm755)
	d.nodes["/"] = root
	d.children["/"] = make(map[string]*vfs.Node)
	return d
}

// MemDriverFromFS seeds an in-memory backend from a vfs tree — the bridge
// from world construction (personality bait trees, demo content) to the
// flat backend.
func MemDriverFromFS(fs *vfs.FS) *MemDriver {
	d := NewMemDriver()
	fs.Root().Walk("/", func(p string, n *vfs.Node) bool {
		if p == "/" {
			d.nodes["/"] = n
			return true
		}
		d.insert(p, n)
		return true
	})
	return d
}

// splitPath separates a cleaned absolute path into parent dir and base name.
func splitPath(p string) (dir, base string) {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/", p[i+1:]
	}
	return p[:i], p[i+1:]
}

// joinPath rebuilds a cleaned absolute path from a parent dir and name.
func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// insert registers a node at p, creating the child index as needed. Caller
// holds the write lock (or is constructing).
func (d *MemDriver) insert(p string, n *vfs.Node) {
	dir, _ := splitPath(p)
	d.nodes[p] = n
	kids := d.children[dir]
	if kids == nil {
		kids = make(map[string]*vfs.Node)
		d.children[dir] = kids
	}
	kids[n.Name] = n
	delete(d.sorted, dir)
	if n.IsDir && d.children[p] == nil {
		d.children[p] = make(map[string]*vfs.Node)
	}
}

func (d *MemDriver) Lookup(p string) *vfs.Node {
	d.mu.RLock()
	n := d.nodes[vfs.Clean(p)]
	d.mu.RUnlock()
	return n
}

func (d *MemDriver) List(p string) ([]*vfs.Node, error) {
	p = vfs.Clean(p)
	d.mu.RLock()
	if s, ok := d.sorted[p]; ok {
		d.mu.RUnlock()
		return s, nil
	}
	n := d.nodes[p]
	d.mu.RUnlock()
	if n == nil {
		return nil, fmt.Errorf("memdriver: %s: no such file or directory", p)
	}
	if !n.IsDir {
		return []*vfs.Node{n}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sorted[p]; ok {
		return s, nil
	}
	kids := d.children[p]
	out := make([]*vfs.Node, 0, len(kids))
	for _, c := range kids {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	d.sorted[p] = out
	return out, nil
}

func (d *MemDriver) Store(p string, content []byte, perm vfs.Mode, replace bool, owner string, anonUpload bool) (*vfs.Node, error) {
	p = vfs.Clean(p)
	dir, base := splitPath(p)
	if base == "" {
		return nil, fmt.Errorf("memdriver: empty file name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	parent := d.nodes[dir]
	if parent == nil || !parent.IsDir {
		return nil, fmt.Errorf("memdriver: %s: parent does not exist", p)
	}
	kids := d.children[dir]
	name := base
	if !replace {
		for i := 1; kids[name] != nil; i++ {
			name = fmt.Sprintf("%s.%d", base, i)
			if i > 1000 {
				return nil, fmt.Errorf("memdriver: %s: too many rename collisions", p)
			}
		}
	}
	node := vfs.NewFileContent(name, perm, content)
	if owner != "" {
		node.Owner = owner
	}
	node.AnonUpload = anonUpload
	d.insert(joinPath(dir, name), node)
	return node, nil
}

func (d *MemDriver) Delete(p string) error {
	p = vfs.Clean(p)
	if p == "/" {
		return fmt.Errorf("memdriver: cannot delete root")
	}
	dir, base := splitPath(p)
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.nodes[p]
	if n == nil {
		return fmt.Errorf("memdriver: %s: no such file", p)
	}
	if n.IsDir && len(d.children[p]) > 0 {
		return fmt.Errorf("memdriver: %s: directory not empty", p)
	}
	delete(d.nodes, p)
	delete(d.children, p)
	delete(d.sorted, p)
	if kids := d.children[dir]; kids != nil {
		delete(kids, base)
	}
	delete(d.sorted, dir)
	return nil
}

func (d *MemDriver) Mkdir(p string, perm vfs.Mode) (*vfs.Node, error) {
	p = vfs.Clean(p)
	dir, base := splitPath(p)
	if base == "" {
		return nil, fmt.Errorf("memdriver: cannot create root")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	parent := d.nodes[dir]
	if parent == nil || !parent.IsDir {
		return nil, fmt.Errorf("memdriver: %s: parent does not exist", p)
	}
	if d.nodes[p] != nil {
		return nil, fmt.Errorf("memdriver: %s: already exists", p)
	}
	node := vfs.NewDir(base, perm)
	d.insert(p, node)
	return node, nil
}

// QuotaDriver bounds the bytes and entries a backend accepts — the polite
// version of a disk filling up. Writes past either limit fail with
// ErrQuotaExceeded, which sessions surface as a 552 reply.
type QuotaDriver struct {
	Driver
	// MaxBytes caps the total content bytes stored through this wrapper;
	// zero means unlimited.
	MaxBytes int64
	// MaxEntries caps the files and directories created through this
	// wrapper; zero means unlimited.
	MaxEntries int64

	usedBytes   atomic.Int64
	usedEntries atomic.Int64
}

// NewQuotaDriver wraps inner with byte and entry caps.
func NewQuotaDriver(inner Driver, maxBytes, maxEntries int64) *QuotaDriver {
	return &QuotaDriver{Driver: inner, MaxBytes: maxBytes, MaxEntries: maxEntries}
}

// UsedBytes reports the bytes currently accounted against the quota.
func (d *QuotaDriver) UsedBytes() int64 { return d.usedBytes.Load() }

// charge atomically applies delta against used, rolling back and reporting
// failure when a positive cap would be exceeded by a positive delta.
func charge(used *atomic.Int64, delta, cap int64) bool {
	if used.Add(delta) > cap && cap > 0 && delta > 0 {
		used.Add(-delta)
		return false
	}
	return true
}

func (d *QuotaDriver) Store(p string, content []byte, perm vfs.Mode, replace bool, owner string, anonUpload bool) (*vfs.Node, error) {
	n := int64(len(content))
	// Credit a replaced file's bytes before charging the new ones, so
	// overwriting in place doesn't consume quota.
	var credit int64
	if replace {
		if old := d.Driver.Lookup(p); old != nil && !old.IsDir {
			credit = old.Size
		}
	}
	if !charge(&d.usedBytes, n-credit, d.MaxBytes) {
		return nil, ErrQuotaExceeded
	}
	var newEntry int64
	if credit == 0 {
		newEntry = 1
	}
	if !charge(&d.usedEntries, newEntry, d.MaxEntries) {
		d.usedBytes.Add(credit - n)
		return nil, ErrQuotaExceeded
	}
	node, err := d.Driver.Store(p, content, perm, replace, owner, anonUpload)
	if err != nil {
		d.usedBytes.Add(credit - n)
		d.usedEntries.Add(-newEntry)
	}
	return node, err
}

func (d *QuotaDriver) Mkdir(p string, perm vfs.Mode) (*vfs.Node, error) {
	if !charge(&d.usedEntries, 1, d.MaxEntries) {
		return nil, ErrQuotaExceeded
	}
	node, err := d.Driver.Mkdir(p, perm)
	if err != nil {
		d.usedEntries.Add(-1)
	}
	return node, err
}

func (d *QuotaDriver) Delete(p string) error {
	var credit int64
	if old := d.Driver.Lookup(p); old != nil && !old.IsDir {
		credit = old.Size
	}
	if err := d.Driver.Delete(p); err != nil {
		return err
	}
	d.usedBytes.Add(-credit)
	d.usedEntries.Add(-1)
	return nil
}

// RateLimitedDriver throttles backend operations with a token bucket — the
// crawler-cap behaviour real servers apply to abusive clients, expressed as
// a driver wrapper so it composes with any backend. Reads and writes that
// find the bucket empty fail with ErrRateLimited (a transient 450 on the
// wire) instead of queueing, so a flood degrades politely rather than
// building unbounded backlog.
type RateLimitedDriver struct {
	Driver
	ops *TokenBucket
}

// NewRateLimitedDriver wraps inner with an operations-per-second cap.
func NewRateLimitedDriver(inner Driver, opsPerSec float64) *RateLimitedDriver {
	burst := opsPerSec
	if burst < 1 {
		burst = 1
	}
	return &RateLimitedDriver{Driver: inner, ops: NewTokenBucket(opsPerSec, burst)}
}

func (d *RateLimitedDriver) take() error {
	if !d.ops.TryTake(1) {
		return ErrRateLimited
	}
	return nil
}

func (d *RateLimitedDriver) List(p string) ([]*vfs.Node, error) {
	if err := d.take(); err != nil {
		return nil, err
	}
	return d.Driver.List(p)
}

func (d *RateLimitedDriver) Store(p string, content []byte, perm vfs.Mode, replace bool, owner string, anonUpload bool) (*vfs.Node, error) {
	if err := d.take(); err != nil {
		return nil, err
	}
	return d.Driver.Store(p, content, perm, replace, owner, anonUpload)
}

func (d *RateLimitedDriver) Delete(p string) error {
	if err := d.take(); err != nil {
		return err
	}
	return d.Driver.Delete(p)
}

func (d *RateLimitedDriver) Mkdir(p string, perm vfs.Mode) (*vfs.Node, error) {
	if err := d.take(); err != nil {
		return nil, err
	}
	return d.Driver.Mkdir(p, perm)
}
