package ftpserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/vfs"
)

// drainNames lists a path and returns the sorted entry names.
func drainNames(t *testing.T, d Driver, p string) []string {
	t.Helper()
	entries, err := d.List(p)
	if err != nil {
		t.Fatalf("List(%s): %v", p, err)
	}
	names := make([]string, len(entries))
	for i, n := range entries {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}

// TestDriverEquivalence runs the same operation sequence against the
// vfs-backed and in-memory drivers and demands identical observable
// behavior — the contract that lets the benchmark swap MemDriver in.
func TestDriverEquivalence(t *testing.T) {
	drivers := map[string]Driver{
		"vfs": NewVFSDriver(testFS()),
		"mem": MemDriverFromFS(testFS()),
	}
	for name, d := range drivers {
		t.Run(name, func(t *testing.T) {
			if got := drainNames(t, d, "/"); strings.Join(got, ",") != "incoming,pub" {
				t.Fatalf("root listing = %v", got)
			}
			if got := drainNames(t, d, "/pub"); strings.Join(got, ",") != "hello.txt,secret.key" {
				t.Fatalf("/pub listing = %v", got)
			}
			n := d.Lookup("/pub/hello.txt")
			if n == nil || n.IsDir || string(n.Content) != "hello world" {
				t.Fatalf("Lookup(/pub/hello.txt) = %+v", n)
			}
			if d.Lookup("/nope") != nil {
				t.Fatal("Lookup(/nope) found a node")
			}
			// Listing a file yields the file itself, like ls(1).
			if got := drainNames(t, d, "/pub/hello.txt"); strings.Join(got, ",") != "hello.txt" {
				t.Fatalf("file listing = %v", got)
			}
			if _, err := d.List("/nope"); err == nil {
				t.Fatal("List of a missing path succeeded")
			}

			if _, err := d.Mkdir("/incoming/drop", vfs.Perm755); err != nil {
				t.Fatalf("Mkdir: %v", err)
			}
			if n := d.Lookup("/incoming/drop"); n == nil || !n.IsDir {
				t.Fatalf("Mkdir result not visible: %+v", n)
			}
			if _, err := d.Store("/incoming/drop/a.txt", []byte("abc"), vfs.Perm644, true, "ftp", true); err != nil {
				t.Fatalf("Store: %v", err)
			}
			n = d.Lookup("/incoming/drop/a.txt")
			if n == nil || string(n.Content) != "abc" || !n.AnonUpload || n.Owner != "ftp" {
				t.Fatalf("stored node = %+v", n)
			}
			// replace=false must rename instead of clobbering.
			if _, err := d.Store("/incoming/drop/a.txt", []byte("xyz"), vfs.Perm644, false, "", false); err != nil {
				t.Fatalf("Store norename: %v", err)
			}
			if got := drainNames(t, d, "/incoming/drop"); strings.Join(got, ",") != "a.txt,a.txt.1" {
				t.Fatalf("after collision = %v", got)
			}
			if err := d.Delete("/incoming/drop/a.txt.1"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := d.Delete("/incoming/drop/a.txt.1"); err == nil {
				t.Fatal("double Delete succeeded")
			}
			// Storing under a missing parent fails on both drivers.
			if _, err := d.Store("/no/such/dir/f", []byte("x"), vfs.Perm644, true, "", false); err == nil {
				t.Fatal("Store under missing parent succeeded")
			}
		})
	}
}

func TestMemDriverListSorted(t *testing.T) {
	d := NewMemDriver()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := d.Store("/"+name, []byte("x"), vfs.Perm644, true, "", false); err != nil {
			t.Fatal(err)
		}
	}
	if got := drainNames(t, d, "/"); strings.Join(got, ",") != "alpha,mid,zeta" {
		t.Fatalf("listing = %v", got)
	}
	// The cached sorted listing must be invalidated by mutation.
	if err := d.Delete("/mid"); err != nil {
		t.Fatal(err)
	}
	if got := drainNames(t, d, "/"); strings.Join(got, ",") != "alpha,zeta" {
		t.Fatalf("listing after delete = %v", got)
	}
}

func TestQuotaDriverByteCap(t *testing.T) {
	d := NewQuotaDriver(NewMemDriver(), 10, 0)
	if _, err := d.Store("/a", []byte("123456"), vfs.Perm644, true, "", false); err != nil {
		t.Fatalf("first store: %v", err)
	}
	if _, err := d.Store("/b", []byte("123456"), vfs.Perm644, true, "", false); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota store: %v", err)
	}
	// Replacing an existing file credits the old size first.
	if _, err := d.Store("/a", []byte("1234567890"), vfs.Perm644, true, "", false); err != nil {
		t.Fatalf("replace store: %v", err)
	}
	if got := d.UsedBytes(); got != 10 {
		t.Fatalf("UsedBytes = %d, want 10", got)
	}
	// Deleting refunds the quota.
	if err := d.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if got := d.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes after delete = %d, want 0", got)
	}
	if _, err := d.Store("/b", []byte("123456"), vfs.Perm644, true, "", false); err != nil {
		t.Fatalf("post-refund store: %v", err)
	}
}

func TestQuotaDriverEntryCap(t *testing.T) {
	d := NewQuotaDriver(NewMemDriver(), 0, 2)
	if _, err := d.Store("/a", []byte("x"), vfs.Perm644, true, "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Mkdir("/dir", vfs.Perm755); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Store("/c", []byte("x"), vfs.Perm644, true, "", false); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-entry store: %v", err)
	}
	if _, err := d.Mkdir("/dir2", vfs.Perm755); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-entry mkdir: %v", err)
	}
}

// TestQuotaDriverRollback checks that a store the inner driver rejects does
// not leak charged quota.
func TestQuotaDriverRollback(t *testing.T) {
	d := NewQuotaDriver(NewMemDriver(), 100, 10)
	if _, err := d.Store("/no/parent", []byte("12345"), vfs.Perm644, true, "", false); err == nil {
		t.Fatal("store under missing parent succeeded")
	}
	if got := d.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes after failed store = %d, want 0", got)
	}
	if _, err := d.Store("/ok", make([]byte, 100), vfs.Perm644, true, "", false); err != nil {
		t.Fatalf("full-quota store after rollback: %v", err)
	}
}

func TestRateLimitedDriver(t *testing.T) {
	// 1 op/s with burst 2: two ops pass, the third is rejected.
	d := NewRateLimitedDriver(NewMemDriver(), 1)
	d.ops = NewTokenBucket(1, 2)
	for i := 0; i < 2; i++ {
		if _, err := d.List("/"); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if _, err := d.List("/"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate list: %v", err)
	}
	if _, err := d.Store("/f", []byte("x"), vfs.Perm644, true, "", false); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate store: %v", err)
	}
	// Lookup is deliberately unmetered: the session loop calls it on
	// nearly every command and it never touches storage.
	if d.Lookup("/") == nil {
		t.Fatal("Lookup was rate-limited")
	}
}

// TestServerQuotaReply drives a quota-capped server end to end: the upload
// that breaches the cap must answer 552, and the 226 success reply must not
// be sent.
func TestServerQuotaReply(t *testing.T) {
	cfg := anonConfig()
	cfg.FS = nil
	cfg.Driver = NewQuotaDriver(MemDriverFromFS(testFS()), 40, 0)
	cfg.AnonWritable = true
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	store := func(name, content string) ftp.Reply {
		dc := env.openPassive(t, c)
		r, err := c.Cmd("STOR", "/incoming/"+name)
		if err != nil || r.Code != ftp.CodeDataOpen {
			t.Fatalf("STOR open: %v %v", r, err)
		}
		if _, err := dc.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		dc.Close()
		r, err = c.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r := store("small.bin", strings.Repeat("a", 30)); r.Code != ftp.CodeTransferOK {
		t.Fatalf("in-quota upload = %+v", r)
	}
	r := store("big.bin", strings.Repeat("b", 30))
	if r.Code != ftp.CodeExceededStorage {
		t.Fatalf("over-quota upload = %+v, want 552", r)
	}
	// The rejected file must not exist.
	if n := cfg.Driver.Lookup("/incoming/big.bin"); n != nil {
		t.Fatalf("rejected upload visible: %+v", n)
	}
}

// TestServerRateLimitReply checks the 450 mapping for a rate-limited LIST.
func TestServerRateLimitReply(t *testing.T) {
	rl := NewRateLimitedDriver(MemDriverFromFS(testFS()), 1)
	rl.ops = NewTokenBucket(1, 1)
	cfg := anonConfig()
	cfg.FS = nil
	cfg.Driver = rl
	env := newEnv(t, cfg)
	c, _ := env.dial(t)
	login(t, c)

	dc := env.openPassive(t, c)
	r, err := c.Cmd("LIST", "")
	if err != nil || r.Code != ftp.CodeDataOpen {
		t.Fatalf("first LIST: %v %v", r, err)
	}
	drainConn(t, dc)
	if r, err = c.ReadReply(); err != nil || r.Code != ftp.CodeTransferOK {
		t.Fatalf("first LIST completion: %v %v", r, err)
	}

	// Burst exhausted: the next LIST is refused before opening data.
	env.openPassive(t, c)
	r, err = c.Cmd("LIST", "")
	if err != nil || r.Code != ftp.CodeFileBusy {
		t.Fatalf("rate-limited LIST = %v %v, want 450", r, err)
	}
}

func drainConn(t *testing.T, dc interface{ Read([]byte) (int, error) }) {
	t.Helper()
	buf := make([]byte, 4096)
	for {
		if _, err := dc.Read(buf); err != nil {
			return
		}
	}
}

// TestMemDriverConcurrent hammers one MemDriver from many goroutines; run
// under -race this guards the lock discipline and the sorted-listing cache.
func TestMemDriverConcurrent(t *testing.T) {
	d := NewMemDriver()
	if _, err := d.Mkdir("/dir", vfs.Perm755); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("/dir/w%d-%d", w, i)
				if _, err := d.Store(p, []byte("x"), vfs.Perm644, true, "", false); err != nil {
					done <- err
					return
				}
				d.Lookup(p)
				if _, err := d.List("/dir"); err != nil {
					done <- err
					return
				}
				if i%2 == 0 {
					if err := d.Delete(p); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	deadline := time.After(30 * time.Second)
	for w := 0; w < 8; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent workers timed out")
		}
	}
}
