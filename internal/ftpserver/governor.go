package ftpserver

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// connState is the governor's per-connection record: the raw conn (so the
// reaper can tear it down) and an activity stamp the session updates with
// one atomic store per command or transfer chunk. Sessions under a governor
// never arm per-read deadlines — at 10k concurrent sessions, resetting a
// runtime timer per command is measurable; one shared ticker scanning
// coarse-grained stamps is not.
type connState struct {
	nc         net.Conn
	ip         string
	lastActive atomic.Int64 // unix nanos
}

// touch stamps the connection as active now.
func (cs *connState) touch() { cs.lastActive.Store(time.Now().UnixNano()) }

// Governor enforces connection caps and idle timeouts for a server: a
// global concurrent-connection ceiling, a per-IP ceiling, and one shared
// reaper ticker that closes connections idle past the deadline. Connections
// over a cap are shed politely (the server sends a 421 and closes) instead
// of being accepted and starved.
type Governor struct {
	// MaxConns caps concurrent governed connections; zero means unlimited.
	MaxConns int
	// MaxConnsPerIP caps concurrent connections from one remote address;
	// zero means unlimited.
	MaxConnsPerIP int
	// IdleTimeout closes connections with no activity for this long;
	// zero disables the reaper.
	IdleTimeout time.Duration

	mu     sync.Mutex
	total  int
	perIP  map[string]int
	conns  map[*connState]struct{}
	done   chan struct{}
	reaper bool
}

// NewGovernor builds a governor with the given limits.
func NewGovernor(maxConns, maxPerIP int, idle time.Duration) *Governor {
	return &Governor{
		MaxConns:      maxConns,
		MaxConnsPerIP: maxPerIP,
		IdleTimeout:   idle,
		perIP:         make(map[string]int),
		conns:         make(map[*connState]struct{}),
	}
}

// Active returns the number of governed connections currently open.
func (g *Governor) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Acquire admits a connection, registering it for idle reaping, or reports
// that it must be shed. The returned state must be passed to Release when
// the session ends.
func (g *Governor) Acquire(ip string, nc net.Conn) (*connState, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done != nil {
		select {
		case <-g.done:
			return nil, false // closed governor admits nobody
		default:
		}
	}
	if g.MaxConns > 0 && g.total >= g.MaxConns {
		return nil, false
	}
	if g.MaxConnsPerIP > 0 && g.perIP[ip] >= g.MaxConnsPerIP {
		return nil, false
	}
	cs := &connState{nc: nc, ip: ip}
	cs.touch()
	g.total++
	g.perIP[ip]++
	g.conns[cs] = struct{}{}
	if g.IdleTimeout > 0 && !g.reaper {
		g.reaper = true
		if g.done == nil {
			g.done = make(chan struct{})
		}
		go g.reap()
	}
	return cs, true
}

// Release returns a connection's slot.
func (g *Governor) Release(cs *connState) {
	if cs == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.conns, cs)
	g.total--
	if n := g.perIP[cs.ip]; n <= 1 {
		delete(g.perIP, cs.ip)
	} else {
		g.perIP[cs.ip] = n - 1
	}
}

// Close stops the reaper. Open connections are left to their sessions.
func (g *Governor) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done == nil {
		g.done = make(chan struct{})
		close(g.done)
		return
	}
	select {
	case <-g.done:
	default:
		close(g.done)
	}
}

// reap scans all governed connections on a shared ticker and closes the
// expired ones; their blocked reads fail and the sessions unwind through
// their normal teardown. Tick granularity is a quarter of the timeout,
// capped at one second — idle enforcement needs no better resolution.
func (g *Governor) reap() {
	tick := g.IdleTimeout / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case now := <-t.C:
			deadline := now.Add(-g.IdleTimeout).UnixNano()
			g.mu.Lock()
			var expired []net.Conn
			for cs := range g.conns {
				if cs.lastActive.Load() < deadline {
					expired = append(expired, cs.nc)
				}
			}
			g.mu.Unlock()
			// Close outside the lock: Close may synchronize with a
			// session blocked mid-read on the same connection.
			for _, nc := range expired {
				nc.Close()
			}
		}
	}
}
