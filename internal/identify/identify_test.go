package identify

import (
	"context"
	"net"
	"testing"
	"time"

	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/worldgen"
)

// scriptedNet is a test HostProvider mapping addresses to port-21 handlers —
// each handler scripts one first-contact behaviour (banner, drip, stall).
type scriptedNet map[simnet.IP]simnet.HandlerFunc

func (s scriptedNet) Lookup(ip simnet.IP) simnet.Host {
	h, ok := s[ip]
	if !ok {
		return nil
	}
	return scriptedHost{h}
}

type scriptedHost struct{ h simnet.HandlerFunc }

func (s scriptedHost) Listening(port uint16) bool { return port == 21 }

func (s scriptedHost) Handler(port uint16) simnet.Handler {
	if port != 21 {
		return nil
	}
	return s.h
}

// identifyOne runs Identify against a single scripted handler.
func identifyOne(t *testing.T, wait time.Duration, h simnet.HandlerFunc) Result {
	t.Helper()
	ip := simnet.MustParseIP("198.51.100.7")
	nw := simnet.NewNetwork(scriptedNet{ip: h})
	cfg := Config{
		Dialer:     simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")},
		BannerWait: wait,
	}
	return Identify(context.Background(), cfg, ip.String())
}

// readAll drains a connection until close so scripted servers can linger.
func readAll(conn net.Conn) {
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// TestIdentifyServerFirstBanner: protocols that speak first are identified
// from the banner alone — no trigger bytes ever leave the scanner.
func TestIdentifyServerFirstBanner(t *testing.T) {
	for _, tc := range []struct {
		name   string
		banner string
		want   fingerprint.Protocol
	}{
		{"ftp", "220 ProFTPD 1.3.5 Server ready\r\n", fingerprint.ProtoFTP},
		{"ssh", "SSH-2.0-OpenSSH_7.4\r\n", fingerprint.ProtoSSH},
	} {
		res := identifyOne(t, time.Second, func(_ *simnet.Network, conn net.Conn) {
			defer conn.Close()
			conn.Write([]byte(tc.banner))
			readAll(conn)
		})
		if res.Protocol != tc.want || res.Triggered {
			t.Errorf("%s: got protocol %q (triggered=%v), want %q untriggered",
				tc.name, res.Protocol, res.Triggered, tc.want)
		}
		if res.Banner != tc.banner {
			t.Errorf("%s: banner %q, want %q", tc.name, res.Banner, tc.banner)
		}
	}
}

// TestIdentifyClientFirstTrigger: quiet endpoints get exactly one minimal
// trigger, and their response identifies them.
func TestIdentifyClientFirstTrigger(t *testing.T) {
	for _, tc := range []struct {
		name  string
		reply []byte
		want  fingerprint.Protocol
	}{
		{"http", []byte("HTTP/1.1 400 Bad Request\r\n\r\n"), fingerprint.ProtoHTTP},
		{"tls", []byte{0x15, 0x03, 0x03, 0x00, 0x02, 0x02, 0x28}, fingerprint.ProtoTLS},
	} {
		res := identifyOne(t, 150*time.Millisecond, func(_ *simnet.Network, conn net.Conn) {
			defer conn.Close()
			buf := make([]byte, 64)
			if n, _ := conn.Read(buf); n == 0 {
				return
			}
			conn.Write(tc.reply)
			readAll(conn)
		})
		if res.Protocol != tc.want || !res.Triggered {
			t.Errorf("%s: got protocol %q (triggered=%v), want %q after trigger",
				tc.name, res.Protocol, res.Triggered, tc.want)
		}
	}
}

// TestIdentifySilentAccept: an endpoint that never speaks through both
// windows is shed as ProtoNone — dead air costs one connection, two waits.
func TestIdentifySilentAccept(t *testing.T) {
	res := identifyOne(t, 60*time.Millisecond, func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		readAll(conn)
	})
	if res.Protocol != fingerprint.ProtoNone || !res.Triggered || res.Err != nil {
		t.Errorf("silent accept: got %+v, want triggered ProtoNone", res)
	}
}

// TestIdentifyDialRefused: a connection failure sheds as ProtoNone with the
// error recorded — no retries, no second dial.
func TestIdentifyDialRefused(t *testing.T) {
	nw := simnet.NewNetwork(nil)
	cfg := Config{Dialer: simnet.Dialer{Net: nw, Src: simnet.MustParseIP("250.0.0.1")}}
	res := Identify(context.Background(), cfg, "198.51.100.7")
	if res.Protocol != fingerprint.ProtoNone || res.Err == nil {
		t.Errorf("refused dial: got %+v, want ProtoNone with error", res)
	}
}

// TestIdentifyChaosDrippedBanner: a hostile server dripping its FTP banner a
// byte or two at a time must still identify as FTP — the settle loop keeps
// reading while the evidence is too thin to call.
func TestIdentifyChaosDrippedBanner(t *testing.T) {
	res := identifyOne(t, 500*time.Millisecond, func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		for _, chunk := range []string{"2", "2", "0 slow drip ftp\r\n"} {
			conn.Write([]byte(chunk))
			time.Sleep(20 * time.Millisecond)
		}
		readAll(conn)
	})
	if res.Protocol != fingerprint.ProtoFTP {
		t.Errorf("dripped banner: got %q (banner %q), want ftp", res.Protocol, res.Banner)
	}
}

// TestIdentifyChaosStalledBanner: a server that emits one byte and stalls is
// shed as garbage when the window closes — identification never hangs on a
// tarpit.
func TestIdentifyChaosStalledBanner(t *testing.T) {
	start := time.Now()
	res := identifyOne(t, 80*time.Millisecond, func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.Write([]byte("2"))
		time.Sleep(2 * time.Second)
	})
	if res.Protocol != fingerprint.ProtoGarbage {
		t.Errorf("stalled banner: got %q, want garbage", res.Protocol)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("stalled banner held identification for %v", elapsed)
	}
}

// TestIdentifyChaosMidBannerUnexpectedEOF: a reply-code fragment cut off by
// a close must never pass as FTP.
func TestIdentifyChaosMidBannerUnexpectedEOF(t *testing.T) {
	res := identifyOne(t, 200*time.Millisecond, func(_ *simnet.Network, conn net.Conn) {
		conn.Write([]byte("22"))
		conn.Close()
	})
	if res.Protocol == fingerprint.ProtoFTP {
		t.Errorf("truncated reply code passed as FTP (banner %q)", res.Banner)
	}
}

// TestIdentifyChaosGarbageBanner: a decisive garbage banner is shed without
// waiting out the window — only thin evidence buys more reading time.
func TestIdentifyChaosGarbageBanner(t *testing.T) {
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = byte(0x80 + i%0x40)
	}
	start := time.Now()
	res := identifyOne(t, 2*time.Second, func(_ *simnet.Network, conn net.Conn) {
		defer conn.Close()
		conn.Write(garbage)
		readAll(conn)
	})
	if res.Protocol != fingerprint.ProtoGarbage {
		t.Errorf("garbage banner: got %q", res.Protocol)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("decisive garbage held identification for %v", elapsed)
	}
}

// stageOver runs a Stage over the first open endpoints of a world and
// returns the routed FTP addresses, shed results, and the metrics registry.
func stageOver(t *testing.T, w *worldgen.World, feed []simnet.IP) (map[simnet.IP]bool, []Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	stage := &Stage{
		Cfg:        Config{BannerWait: 120 * time.Millisecond},
		Network:    simnet.NewNetwork(w),
		SourceBase: simnet.MustParseIP("250.0.1.1"),
		Workers:    16,
		Metrics:    reg,
	}
	in := make(chan simnet.IP)
	ftp := make(chan simnet.IP, len(feed))
	shed := make(chan Result, len(feed))
	go func() {
		for _, ip := range feed {
			in <- ip
		}
		close(in)
	}()
	stage.Run(context.Background(), in, ftp, shed)
	passed := map[simnet.IP]bool{}
	for ip := range ftp {
		passed[ip] = true
	}
	var shedRes []Result
	for r := range shed {
		shedRes = append(shedRes, r)
	}
	return passed, shedRes, reg
}

// openEndpoints collects the first n discovered endpoints (FTP and service
// hosts alike) of a world, as the probe stage would hand them over.
func openEndpoints(t *testing.T, w *worldgen.World, n int) (feed []simnet.IP, ftpTruth map[simnet.IP]bool) {
	t.Helper()
	ftpTruth = map[simnet.IP]bool{}
	base := uint64(w.ScanBase)
	for off := uint64(0); off < w.ScanSize && len(feed) < n; off++ {
		ip := simnet.IP(base + off)
		truth, ok := w.Truth(ip)
		if !ok || (!truth.FTP && !truth.NonFTPOpen) {
			continue
		}
		feed = append(feed, ip)
		if truth.FTP {
			ftpTruth[ip] = true
		}
	}
	if len(feed) < n {
		t.Fatalf("world yielded only %d open endpoints, want %d", len(feed), n)
	}
	return feed, ftpTruth
}

// TestIdentifyStageMixedWorld: over a benign mixed world, the stage routes
// every true FTP endpoint to the enumerator and sheds every service host
// after exactly one identification dial — the one-round-trip economics the
// funnel is built on.
func TestIdentifyStageMixedWorld(t *testing.T) {
	p := worldgen.DefaultParams(11, 262144)
	p.FTPRateOfOpen = 0.35
	p.ServiceMix = worldgen.DefaultServiceMix()
	w, err := worldgen.New(p)
	if err != nil {
		t.Fatal(err)
	}
	feed, ftpTruth := openEndpoints(t, w, 96)
	passed, shed, reg := stageOver(t, w, feed)

	for ip := range ftpTruth {
		if !passed[ip] {
			t.Errorf("%s: true FTP endpoint did not reach the enumerator", ip)
		}
	}
	for _, r := range shed {
		if ftpTruth[simnet.MustParseIP(r.IP)] {
			t.Errorf("%s: true FTP endpoint shed as %q", r.IP, r.Protocol)
		}
		if r.Protocol == fingerprint.ProtoFTP {
			t.Errorf("%s: shed result carries protocol ftp", r.IP)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["identify.dials"]; got != uint64(len(feed)) {
		t.Errorf("identify.dials = %d, want exactly one per endpoint (%d)", got, len(feed))
	}
	if got := snap.Counters["identify.passed"]; got != uint64(len(ftpTruth)) {
		t.Errorf("identify.passed = %d, want %d", got, len(ftpTruth))
	}
	if got := snap.Counters["identify.shed"]; got != uint64(len(feed)-len(ftpTruth)) {
		t.Errorf("identify.shed = %d, want %d", got, len(feed)-len(ftpTruth))
	}
	if snap.Counters["identify.errors"] != 0 {
		t.Errorf("benign world produced %d identify errors", snap.Counters["identify.errors"])
	}
}

// TestIdentifyStageHostileMixedWorld: with transport faults on both FTP and
// service hosts, every endpoint is still accounted for — passed plus shed
// equals dials, and nothing is dialed twice. Faulted FTP hosts may legally
// shed (a pre-banner reset looks dead from one connection), but the stage
// must neither hang nor double-count.
func TestIdentifyStageHostileMixedWorld(t *testing.T) {
	p := worldgen.DefaultParams(11, 262144)
	p.FTPRateOfOpen = 0.35
	p.ServiceMix = worldgen.DefaultServiceMix()
	p.HostileRate = 0.5
	w, err := worldgen.New(p)
	if err != nil {
		t.Fatal(err)
	}
	feed, _ := openEndpoints(t, w, 64)
	passed, shed, reg := stageOver(t, w, feed)

	snap := reg.Snapshot()
	if got := snap.Counters["identify.dials"]; got != uint64(len(feed)) {
		t.Errorf("identify.dials = %d, want %d", got, len(feed))
	}
	if got := len(passed) + len(shed); got != len(feed) {
		t.Errorf("passed %d + shed %d endpoints, fed %d", len(passed), len(shed), len(feed))
	}
	if snap.Counters["identify.passed"]+snap.Counters["identify.shed"] != snap.Counters["identify.dials"] {
		t.Errorf("counter ledger out of balance: %+v", snap.Counters)
	}
	if len(passed) == 0 {
		t.Error("no FTP endpoint survived identification in the hostile world")
	}
}
