// Package identify is the census pipeline's middle stage: LZR-style
// service identification ("LZR: Identifying Unexpected Internet Services").
// Discovery only proves a port accepts connections; a large share of those
// endpoints speak something other than the expected protocol, or nothing at
// all. Burning a full enumeration slot — connection, banner timeout, login
// attempts, retries — on every such endpoint is the cost LZR eliminated:
// identify reads only the first response bytes off a fresh connection
// (waiting briefly for a server-first banner, then sending one minimal
// trigger for client-first protocols), fingerprints the protocol, and
// routes. FTP endpoints flow on to the enumerator fleet unchanged;
// everything else is recorded and shed after exactly one connection and at
// most one trigger round-trip.
package identify

import (
	"context"
	"net"
	"sync"
	"time"

	"ftpcloud/internal/fingerprint"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// Dialer abstracts connection establishment, mirroring enumerator.Dialer so
// the stage runs over the simulated network or real sockets.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// Defaults.
const (
	// DefaultBannerWait is how long identify waits for a server-first
	// banner before concluding the protocol is client-first (or silent)
	// and sending the trigger.
	DefaultBannerWait = 2 * time.Second
	// DefaultMaxBytes caps how much of the first response is read — LZR's
	// economy is reading a handshake, not a payload.
	DefaultMaxBytes = 256
)

// trigger is the one probe sent to endpoints that stay quiet: a minimal
// HTTP request. Client-first protocols answer it in kind (HTTP with a
// response line, TLS with an alert record), and anything that stays silent
// through both windows is shed as dead air.
var trigger = []byte("GET / HTTP/1.0\r\n\r\n")

// Config parameterizes identification.
type Config struct {
	// Dialer establishes connections. Required.
	Dialer Dialer
	// BannerWait bounds the wait for server-first bytes; zero means
	// DefaultBannerWait. The same window bounds the post-trigger read.
	BannerWait time.Duration
	// MaxBytes caps the first-response read; zero means DefaultMaxBytes.
	MaxBytes int
	// Metrics, when non-nil, records the stage's ledger: identify.dials,
	// identify.passed, identify.shed, identify.triggered,
	// identify.errors, and the identify.latency histogram.
	Metrics *obs.Registry
	// MetricsPrefix namespaces per-shard counters ("shard3."); prefixed
	// counters also feed the unprefixed merged view.
	MetricsPrefix string
}

// Result is one endpoint's identification outcome.
type Result struct {
	// IP is the endpoint.
	IP string
	// Protocol is the sniffed wire protocol: ProtoFTP routes to the
	// enumerator, everything else is shed. ProtoNone covers silent
	// accepts and endpoints whose connection failed outright.
	Protocol fingerprint.Protocol
	// Banner holds the first response bytes (at most MaxBytes).
	Banner string
	// Triggered reports that the endpoint stayed quiet through the
	// banner window and was probed with the minimal trigger.
	Triggered bool
	// Err records a connection-level failure (dial error); the endpoint
	// is shed as ProtoNone.
	Err error
}

// Identify classifies one endpoint with a single connection: wait for a
// banner, else send the trigger, sniff whatever came back first.
func Identify(ctx context.Context, cfg Config, ip string) Result {
	res := Result{IP: ip, Protocol: fingerprint.ProtoNone}
	wait := cfg.BannerWait
	if wait <= 0 {
		wait = DefaultBannerWait
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}

	conn, err := cfg.Dialer.Dial("tcp", net.JoinHostPort(ip, "21"))
	if err != nil {
		res.Err = err
		return res
	}
	defer conn.Close()
	if d, ok := ctx.Deadline(); ok && time.Until(d) < wait {
		wait = time.Until(d)
	}

	buf := make([]byte, maxBytes)
	conn.SetReadDeadline(time.Now().Add(wait))
	n, readErr := conn.Read(buf)
	if n == 0 {
		// Quiet so far: either client-first or dead air. One trigger
		// round-trip decides which — unless the peer already hung up.
		if readErr != nil && !isTimeout(readErr) {
			return res
		}
		res.Triggered = true
		if _, err := conn.Write(trigger); err != nil {
			return res
		}
		conn.SetReadDeadline(time.Now().Add(wait))
		n, _ = conn.Read(buf)
		if n == 0 {
			return res
		}
	}
	// A dripping peer's first chunk can be a byte or two — too short to
	// tell a sliced "2" from real garbage. Keep reading within the window
	// only while the evidence is that thin; decisive openings (any known
	// protocol, or enough bytes to call garbage honestly) return at once.
	for n < maxBytes && indecisive(buf[:n]) {
		conn.SetReadDeadline(time.Now().Add(wait))
		m, err := conn.Read(buf[n:])
		n += m
		if m == 0 || err != nil {
			break
		}
	}
	res.Banner = string(buf[:n])
	res.Protocol = fingerprint.SniffProtocol(buf[:n])
	return res
}

// indecisive reports that the bytes so far are both unrecognized and too few
// to rule a protocol out — the only case worth waiting for more.
func indecisive(b []byte) bool {
	return len(b) < 8 && fingerprint.SniffProtocol(b) == fingerprint.ProtoGarbage
}

// isTimeout reports whether a read error is a deadline expiry rather than a
// closed connection.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// Stage fans identification over a stream of discovered endpoints, the
// pipeline segment between discovery and enumeration.
type Stage struct {
	// Cfg parameterizes each identification. Its Dialer is ignored; each
	// worker gets its own source-bound dialer.
	Cfg Config
	// Network is the simulated Internet.
	Network *simnet.Network
	// SourceBase is the first identification source address; worker i
	// binds SourceBase+i.
	SourceBase simnet.IP
	// Workers is the concurrency; 0 means 32.
	Workers int
	// Metrics and MetricsPrefix override Cfg's when non-nil/non-empty.
	Metrics       *obs.Registry
	MetricsPrefix string
}

// stageMetrics resolves the stage's instruments once.
type stageMetrics struct {
	dials     *obs.Counter
	passed    *obs.Counter
	shed      *obs.Counter
	triggered *obs.Counter
	errors    *obs.Counter
	latency   *obs.Histogram
}

func newStageMetrics(reg *obs.Registry, prefix string) stageMetrics {
	return stageMetrics{
		dials:     reg.ChildCounter(prefix, "identify.dials"),
		passed:    reg.ChildCounter(prefix, "identify.passed"),
		shed:      reg.ChildCounter(prefix, "identify.shed"),
		triggered: reg.ChildCounter(prefix, "identify.triggered"),
		errors:    reg.ChildCounter(prefix, "identify.errors"),
		latency:   reg.Histogram("identify.latency", obs.DefaultLatencyBuckets...),
	}
}

// Run identifies every endpoint from in, forwarding FTP endpoints to ftp
// (in identification-completion order) and everything else to shed. It
// closes ftp and shed when done — the enumerator fleet downstream sees a
// normal intake close, and the drain knows the shed stream is complete.
func (s *Stage) Run(ctx context.Context, in <-chan simnet.IP, ftp chan<- simnet.IP, shed chan<- Result) {
	defer close(ftp)
	defer close(shed)
	workers := s.Workers
	if workers <= 0 {
		workers = 32
	}
	reg := s.Metrics
	if reg == nil {
		reg = s.Cfg.Metrics
	}
	prefix := s.MetricsPrefix
	if prefix == "" {
		prefix = s.Cfg.MetricsPrefix
	}
	m := newStageMetrics(reg, prefix)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(src simnet.IP) {
			defer wg.Done()
			cfg := s.Cfg
			cfg.Dialer = simnet.Dialer{Net: s.Network, Src: src}
			for {
				select {
				case <-ctx.Done():
					return
				case ip, ok := <-in:
					if !ok {
						return
					}
					start := time.Now()
					res := Identify(ctx, cfg, ip.String())
					m.latency.Since(start)
					m.dials.Inc()
					if res.Triggered {
						m.triggered.Inc()
					}
					if res.Err != nil {
						m.errors.Inc()
					}
					if res.Protocol == fingerprint.ProtoFTP {
						m.passed.Inc()
						select {
						case ftp <- ip:
						case <-ctx.Done():
							return
						}
						continue
					}
					m.shed.Inc()
					select {
					case shed <- res:
					case <-ctx.Done():
						return
					}
				}
			}
		}(simnet.IP(uint64(s.SourceBase) + uint64(i)))
	}
	wg.Wait()
}
