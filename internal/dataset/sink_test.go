package dataset

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestWriterSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	for i := 0; i < 3; i++ {
		if err := s.Observe(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].IP != "10.1.2.3" {
		t.Fatalf("round trip: %d records", len(recs))
	}
}

type closeTracker struct {
	strings.Builder
	closed bool
}

func (c *closeTracker) Close() error {
	c.closed = true
	return nil
}

func TestWriterSinkClosesCloser(t *testing.T) {
	var ct closeTracker
	s := NewWriterSink(&ct)
	if err := s.Observe(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !ct.closed {
		t.Error("underlying closer not closed")
	}
	if !strings.Contains(ct.String(), `"10.1.2.3"`) {
		t.Error("buffer not flushed before close")
	}
}

func TestCollectorAndCounter(t *testing.T) {
	var coll Collector
	cnt := &Counter{Next: &coll}
	for i := 0; i < 5; i++ {
		if err := cnt.Observe(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if cnt.Count() != 5 || len(coll.Records) != 5 {
		t.Errorf("counter %d, collector %d", cnt.Count(), len(coll.Records))
	}
	if err := cnt.Close(); err != nil {
		t.Fatal(err)
	}
}

type failSink struct{ err error }

func (f failSink) Observe(*HostRecord) error { return f.err }
func (f failSink) Close() error              { return f.err }

func TestTeeFanOutAndError(t *testing.T) {
	var a, b Collector
	tee := Tee(&a, &b)
	if err := tee.Observe(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != 1 || len(b.Records) != 1 {
		t.Errorf("fan-out: %d / %d", len(a.Records), len(b.Records))
	}

	boom := errors.New("boom")
	tee = Tee(&a, failSink{boom}, &b)
	if err := tee.Observe(sampleRecord()); !errors.Is(err, boom) {
		t.Errorf("Observe error = %v", err)
	}
	if err := tee.Close(); !errors.Is(err, boom) {
		t.Errorf("Close error = %v", err)
	}

	// Single-sink Tee collapses to the sink itself.
	if got := Tee(&a); got != Sink(&a) {
		t.Error("Tee of one sink should return it unchanged")
	}
}

func TestSyncedSerializesConcurrentProducers(t *testing.T) {
	var coll Collector
	s := Synced(&coll)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Observe(sampleRecord()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(coll.Records) != 400 {
		t.Errorf("collector saw %d records, want 400", len(coll.Records))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

type closeCountSink struct {
	Collector
	closes int
}

func (s *closeCountSink) Close() error {
	s.closes++
	return nil
}

func TestKeepOpenSuppressesClose(t *testing.T) {
	inner := &closeCountSink{}
	view := KeepOpen(inner)
	if err := view.Observe(sampleRecord()); err != nil {
		t.Fatal(err)
	}
	if len(inner.Records) != 1 {
		t.Errorf("KeepOpen did not forward Observe: %d records", len(inner.Records))
	}
	if err := view.Close(); err != nil {
		t.Fatal(err)
	}
	if inner.closes != 0 {
		t.Errorf("KeepOpen leaked Close to the shared sink (%d closes)", inner.closes)
	}
	if err := inner.Close(); err != nil || inner.closes != 1 {
		t.Errorf("owner close: err=%v closes=%d", err, inner.closes)
	}
}
