package dataset

import (
	"io"
	"sync"
)

// Sink consumes host records as a census emits them, one at a time. This is
// the streaming counterpart of a record slice: the pipeline pushes each
// record through a sink chain the moment the enumerator finishes a host, so
// nothing forces the whole dataset to stay resident.
//
// Observe is always called from a single goroutine at a time; sinks need no
// internal locking. Close flushes buffered state and releases resources;
// after Close no further Observe calls arrive.
type Sink interface {
	Observe(rec *HostRecord) error
	Close() error
}

// WriterSink streams records to an io.Writer as JSONL. If the underlying
// writer is an io.Closer (a file), Close closes it after flushing.
type WriterSink struct {
	w *Writer
	c io.Closer
}

// NewWriterSink wraps w for streaming persistence.
func NewWriterSink(w io.Writer) *WriterSink {
	s := &WriterSink{w: NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Observe appends one record to the JSONL stream.
func (s *WriterSink) Observe(rec *HostRecord) error { return s.w.Write(rec) }

// Count returns the number of records written so far.
func (s *WriterSink) Count() int { return s.w.Count() }

// Flush pushes buffered records through to the underlying writer without
// closing it. A checkpoint coordinator calls this at quiescence so the
// on-disk ledger contains exactly the records the checkpoint counts. Only
// safe when no Observe is in flight.
func (s *WriterSink) Flush() error { return s.w.Flush() }

// Close flushes the buffer and closes the underlying writer when it is
// closable.
func (s *WriterSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Collector retains every record in memory — the legacy buffered mode, and
// the natural sink for tests.
type Collector struct {
	Records []*HostRecord
}

// Observe appends the record.
func (c *Collector) Observe(rec *HostRecord) error {
	c.Records = append(c.Records, rec)
	return nil
}

// Close is a no-op.
func (c *Collector) Close() error { return nil }

// Counter counts records, forwarding each to Next when one is set.
type Counter struct {
	Next Sink
	n    int
}

// Observe counts and forwards.
func (c *Counter) Observe(rec *HostRecord) error {
	c.n++
	if c.Next != nil {
		return c.Next.Observe(rec)
	}
	return nil
}

// Count returns how many records were observed.
func (c *Counter) Count() int { return c.n }

// Close closes the forwarding target.
func (c *Counter) Close() error {
	if c.Next != nil {
		return c.Next.Close()
	}
	return nil
}

// Synced adapts a sink for concurrent producers by serializing Observe and
// Close under a mutex. The Sink contract promises one goroutine at a time;
// when several pipelines share one ledger (the sharded census streaming to
// a single JSONL sink), Synced restores that promise at the merge point.
func Synced(s Sink) Sink {
	return &syncedSink{s: s}
}

type syncedSink struct {
	mu sync.Mutex
	s  Sink
}

func (s *syncedSink) Observe(rec *HostRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Observe(rec)
}

func (s *syncedSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Close()
}

// KeepOpen returns a view of s whose Close is a no-op. Sink chains close
// everything they own; when a sink is shared across several chains, each
// chain gets a KeepOpen view and the owner closes the real sink once after
// every chain has finished.
func KeepOpen(s Sink) Sink {
	return keepOpenSink{s: s}
}

type keepOpenSink struct {
	s Sink
}

func (s keepOpenSink) Observe(rec *HostRecord) error { return s.s.Observe(rec) }

func (s keepOpenSink) Close() error { return nil }

// Tee fans every record out to each sink in order. Observe stops at the
// first failing sink; Close closes every sink and reports the first error.
func Tee(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return multiSink(sinks)
}

type multiSink []Sink

func (m multiSink) Observe(rec *HostRecord) error {
	for _, s := range m {
		if err := s.Observe(rec); err != nil {
			return err
		}
	}
	return nil
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
