package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// closeCounter wraps a buffer and records Close calls.
type closeCounter struct {
	bytes.Buffer
	closed int
}

func (c *closeCounter) Close() error { c.closed++; return nil }

func TestLinesWritesOneJSONObjectPerLine(t *testing.T) {
	var sink closeCounter
	l := NewLines(&sink)
	type row struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Write(row{Name: "x", N: g*100 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Count(); got != 400 {
		t.Errorf("Count = %d, want 400", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closed != 1 {
		t.Errorf("underlying closer closed %d times", sink.closed)
	}

	lines := 0
	sc := bufio.NewScanner(&sink.Buffer)
	for sc.Scan() {
		var r row
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 400 {
		t.Errorf("decoded %d lines, want 400", lines)
	}
}

func TestLinesWithoutCloser(t *testing.T) {
	var buf bytes.Buffer
	l := NewLines(&buf)
	if err := l.Write(map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("nothing flushed")
	}
}
