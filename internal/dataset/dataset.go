// Package dataset defines the measurement records the census produces and a
// JSONL store for persisting them. The schema mirrors what the paper's
// toolchain captured per host: banner, login outcome, robots.txt, directory
// listings with permissions, HELP/FEAT/SITE output, FTPS certificate, PASV
// posture, and PORT-validation results.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Readability mirrors listparse's tri-state as a stable wire enum.
type Readability string

// Readability values.
const (
	ReadUnknown Readability = "unk"
	ReadYes     Readability = "yes"
	ReadNo      Readability = "no"
)

// FileEntry is one observed file or directory.
type FileEntry struct {
	Path    string      `json:"path"`
	Name    string      `json:"name"`
	IsDir   bool        `json:"is_dir,omitempty"`
	Size    int64       `json:"size,omitempty"`
	Read    Readability `json:"read,omitempty"`
	Write   Readability `json:"write,omitempty"`
	Owner   string      `json:"owner,omitempty"`
	ModTime time.Time   `json:"mtime,omitempty"`
}

// CertInfo describes a collected FTPS certificate.
type CertInfo struct {
	FingerprintSHA256 string `json:"fingerprint"`
	CommonName        string `json:"common_name"`
	SelfSigned        bool   `json:"self_signed"`
}

// FTPSInfo captures the AUTH TLS observations for one host.
type FTPSInfo struct {
	Supported        bool      `json:"supported"`
	RequiredPreLogin bool      `json:"required_pre_login,omitempty"`
	Cert             *CertInfo `json:"cert,omitempty"`
}

// PortValidation is the host's PORT-command posture.
type PortValidation string

// PORT validation outcomes.
const (
	PortNotTested    PortValidation = "not-tested"
	PortValidated    PortValidation = "validated"
	PortNotValidated PortValidation = "not-validated"
)

// HostRecord is everything the enumerator learned about one address.
type HostRecord struct {
	IP        string    `json:"ip"`
	ScannedAt time.Time `json:"scanned_at,omitempty"`

	// PortOpen is true for every record (hosts come from discovery);
	// FTP marks hosts whose banner was FTP-compliant.
	PortOpen bool   `json:"port_open"`
	FTP      bool   `json:"ftp"`
	Banner   string `json:"banner,omitempty"`

	// Service names the wire protocol the identification stage sniffed on
	// an endpoint it shed before enumeration ("http", "ssh", "tls",
	// "telnet", "garbage", "none"). Empty on FTP records and on two-stage
	// runs without identification.
	Service string `json:"service,omitempty"`

	// BannerIP is an IP address embedded in the banner, if any (devices
	// frequently display their own, often RFC 1918, address).
	BannerIP        string `json:"banner_ip,omitempty"`
	BannerIPPrivate bool   `json:"banner_ip_private,omitempty"`

	// BannerOptOut marks banners that declare anonymous access
	// unavailable; the enumerator honors them by not attempting login.
	BannerOptOut bool `json:"banner_opt_out,omitempty"`

	AnonymousOK bool   `json:"anonymous_ok"`
	LoginReply  string `json:"login_reply,omitempty"`

	Syst string   `json:"syst,omitempty"`
	Feat []string `json:"feat,omitempty"`
	Help string   `json:"help,omitempty"`
	Site string   `json:"site,omitempty"`

	RobotsTxt        string `json:"robots_txt,omitempty"`
	RobotsExcludeAll bool   `json:"robots_exclude_all,omitempty"`

	Files            []FileEntry `json:"files,omitempty"`
	RequestsUsed     int         `json:"requests_used,omitempty"`
	ListingTruncated bool        `json:"listing_truncated,omitempty"`
	ConnTerminated   bool        `json:"conn_terminated,omitempty"`

	// PASVIP is the address advertised in the first PASV reply; a
	// mismatch with IP reveals NAT.
	PASVIP       string `json:"pasv_ip,omitempty"`
	PASVMismatch bool   `json:"pasv_mismatch,omitempty"`

	PortCheck PortValidation `json:"port_check,omitempty"`

	// FTPS is nil until the enumerator attempts AUTH TLS; a pointer so
	// omitempty actually elides it from hosts with no TLS observations.
	FTPS *FTPSInfo `json:"ftps,omitempty"`

	// WriteEvidence lists reference-set filenames observed in listings
	// (§VI.A's world-writability indicator).
	WriteEvidence []string `json:"write_evidence,omitempty"`
	// AnonUploadConfirmed marks hosts whose server confirmed an
	// anonymous upload via the Pure-FTPd-style RETR refusal message —
	// §VI.A's strongest write evidence.
	AnonUploadConfirmed bool `json:"anon_upload_confirmed,omitempty"`

	// Partial marks records whose enumeration was degraded by a fault —
	// a reset mid-traversal, a stalled data channel, an exhausted budget —
	// rather than completing or being refused. The data present is valid;
	// the host simply was not fully explored.
	Partial bool `json:"partial,omitempty"`
	// FailureClass names the dominant fault behind a partial or failed
	// enumeration: "connect", "timeout", "reset", "eof", "protocol",
	// "stall", "budget-time", "budget-bytes", or "io".
	FailureClass string `json:"failure_class,omitempty"`
	// SkippedDirs counts subtrees abandoned to keep the host alive (e.g.
	// a stalled LIST skips that directory, not the whole host).
	SkippedDirs int `json:"skipped_dirs,omitempty"`
	// Retries counts transport-level retry attempts consumed.
	Retries int `json:"retries,omitempty"`
	// DataBytes totals bytes read over data channels.
	DataBytes int64 `json:"data_bytes,omitempty"`

	// Error records a fatal enumeration failure, if any.
	Error string `json:"error,omitempty"`
}

// EnsureFTPS returns the record's FTPS observations, allocating them on
// first use.
func (r *HostRecord) EnsureFTPS() *FTPSInfo {
	if r.FTPS == nil {
		r.FTPS = &FTPSInfo{}
	}
	return r.FTPS
}

// FTPSSupported reports whether the host completed AUTH TLS.
func (r *HostRecord) FTPSSupported() bool {
	return r.FTPS != nil && r.FTPS.Supported
}

// FTPSCert returns the collected certificate, or nil.
func (r *HostRecord) FTPSCert() *CertInfo {
	if r.FTPS == nil {
		return nil
	}
	return r.FTPS.Cert
}

// Writer persists records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	n   int
	enc *json.Encoder
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (w *Writer) Write(rec *HostRecord) error {
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("dataset: encoding record for %s: %w", rec.IP, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// ReadAll parses a JSONL stream back into records.
func ReadAll(r io.Reader) ([]*HostRecord, error) {
	var out []*HostRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec := &HostRecord{}
		if err := json.Unmarshal(sc.Bytes(), rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning: %w", err)
	}
	return out, nil
}
