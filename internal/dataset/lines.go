package dataset

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Lines streams arbitrary values to an io.Writer as JSONL — the event-stream
// counterpart of WriterSink for streams that are not host records (the
// honeypot fleet's interaction events). Unlike Sink, whose contract is one
// producer at a time, Lines serializes internally: hundreds of concurrent
// honeypot sessions write through one Lines without external locking.
//
// If the underlying writer is an io.Closer (a file), Close closes it after
// flushing.
type Lines struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	n   int64
}

// NewLines wraps w for streaming JSONL persistence.
func NewLines(w io.Writer) *Lines {
	bw := bufio.NewWriter(w)
	l := &Lines{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Write appends one value as a JSON line.
func (l *Lines) Write(v any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(v); err != nil {
		return err
	}
	l.n++
	return nil
}

// Count returns the number of lines written so far.
func (l *Lines) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close flushes buffered lines and closes the underlying writer when it is
// closable.
func (l *Lines) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.w.Flush()
	if l.c != nil {
		if cerr := l.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
