package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleRecord() *HostRecord {
	return &HostRecord{
		IP:          "10.1.2.3",
		ScannedAt:   time.Date(2015, 6, 18, 0, 0, 0, 0, time.UTC),
		PortOpen:    true,
		FTP:         true,
		Banner:      "220 ProFTPD 1.3.5 Server",
		AnonymousOK: true,
		Feat:        []string{"UTF8", "AUTH TLS"},
		Files: []FileEntry{
			{Path: "/pub", Name: "pub", IsDir: true, Read: ReadYes},
			{Path: "/pub/x.txt", Name: "x.txt", Size: 42, Read: ReadYes, Owner: "ftp"},
		},
		PortCheck:     PortNotValidated,
		FTPS:          &FTPSInfo{Supported: true, Cert: &CertInfo{FingerprintSHA256: "abcd", CommonName: "*.home.pl"}},
		WriteEvidence: []string{"w0000000t.txt"},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(sampleRecord()); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	r := recs[0]
	if r.IP != "10.1.2.3" || !r.FTP || len(r.Files) != 2 {
		t.Errorf("round trip lost data: %+v", r)
	}
	if r.Files[1].Size != 42 || r.Files[1].Read != ReadYes {
		t.Errorf("file entry: %+v", r.Files[1])
	}
	if r.FTPSCert() == nil || r.FTPSCert().CommonName != "*.home.pl" {
		t.Errorf("cert: %+v", r.FTPSCert())
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	input := `{"ip":"1.2.3.4","port_open":true,"ftp":false,"anonymous_ok":false}` + "\n\n" +
		`{"ip":"5.6.7.8","port_open":true,"ftp":true,"anonymous_ok":true}` + "\n"
	recs, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].IP != "5.6.7.8" {
		t.Errorf("got %+v", recs)
	}
}

func TestReadAllBadJSON(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestOmitEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(&HostRecord{IP: "1.1.1.1", PortOpen: true}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	line := buf.String()
	// "ftps" is in this list because FTPS is a pointer precisely so that
	// hosts without TLS observations serialize without an empty object.
	for _, absent := range []string{"banner", "files", "robots", "write_evidence", "error", "ftps"} {
		if strings.Contains(line, `"`+absent+`"`) {
			t.Errorf("empty field %q serialized: %s", absent, line)
		}
	}
}
