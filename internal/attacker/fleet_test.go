package attacker

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// TestDefaultMixExactN: the population must be exactly n for every n — the
// old mix hardcoded the singleton CVE/Seagate profiles to 1, so small fleets
// overflowed n and the clamped scanner-only remainder hid the bug.
func TestDefaultMixExactN(t *testing.T) {
	for _, n := range []int{1, 8, 457, 10000} {
		bots := DefaultMix(n, 99, 0.30)
		if len(bots) != n {
			t.Errorf("DefaultMix(%d) built %d bots", n, len(bots))
		}
	}
	// Rare profiles scale away below the paper's population and scale up
	// proportionally above it.
	count := func(bots []Bot, p Profile) int {
		c := 0
		for _, b := range bots {
			if b.Profile == p {
				c++
			}
		}
		return c
	}
	small := DefaultMix(100, 99, 0.30)
	if got := count(small, ProfileCVEExploit); got != 0 {
		t.Errorf("n=100: CVE bots = %d, want 0", got)
	}
	big := DefaultMix(10000, 99, 0.30)
	if got := count(big, ProfileCVEExploit); got != 10000/457 {
		t.Errorf("n=10000: CVE bots = %d, want %d", got, 10000/457)
	}
	if got := count(big, ProfileSeagateRAT); got != 10000/457 {
		t.Errorf("n=10000: Seagate bots = %d, want %d", got, 10000/457)
	}
}

// TestCampaignSessionBudget: campaign mode runs exactly the session budget
// against a live target, and identical configs replay identically.
func TestCampaignSessionBudget(t *testing.T) {
	run := func() Stats {
		nw, ip, _ := testTarget(t)
		fleet := &Fleet{
			Network:     nw,
			Bots:        DefaultMix(12, 7, 0.30),
			Targets:     []simnet.IP{ip},
			Sessions:    200,
			Concurrency: 8,
			Timeout:     5 * time.Second,
		}
		return fleet.Run(context.Background())
	}
	stats := run()
	if stats.Sessions != 200 {
		t.Fatalf("campaign ran %d sessions, want 200", stats.Sessions)
	}
	if stats.BotsRun != 12 {
		t.Errorf("campaign used %d bots, want all 12", stats.BotsRun)
	}
	again := run()
	stats.Elapsed, again.Elapsed = 0, 0
	if stats.Sessions != again.Sessions || stats.Errors != again.Errors || stats.BotsRun != again.BotsRun {
		t.Errorf("campaign not reproducible: %+v vs %+v", stats, again)
	}
}

// TestCampaignNeverDialedNotCounted: sessions count only visits that
// actually connected — against a dead network every claim errors and the
// session counter stays at zero.
func TestCampaignNeverDialedNotCounted(t *testing.T) {
	reg := obs.NewRegistry()
	fleet := &Fleet{
		Network:     simnet.NewNetwork(nil),
		Bots:        []Bot{{Source: 1, Profile: ProfileScannerOnly}},
		Targets:     []simnet.IP{simnet.MustParseIP("100.64.0.99")},
		Sessions:    50,
		Concurrency: 4,
		Timeout:     time.Second,
		Metrics:     reg,
	}
	stats := fleet.Run(context.Background())
	if stats.Sessions != 0 {
		t.Errorf("dead target counted %d sessions, want 0", stats.Sessions)
	}
	if stats.Errors != 50 {
		t.Errorf("dead target errors = %d, want 50", stats.Errors)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["attacker.sessions"]; got != 0 {
		t.Errorf("attacker.sessions = %d, want 0", got)
	}
	if got := snap.Counters["attacker.errors"]; got != 50 {
		t.Errorf("attacker.errors = %d, want 50", got)
	}
	if got := snap.Gauges["attacker.inflight"]; got != 0 {
		t.Errorf("attacker.inflight = %d after run, want 0", got)
	}
}

// TestLegacyNeverDialedNotCounted: the legacy one-visit-per-bot-target shape
// obeys the same rule.
func TestLegacyNeverDialedNotCounted(t *testing.T) {
	fleet := &Fleet{
		Network: simnet.NewNetwork(nil),
		Bots:    []Bot{{Source: 1, Profile: ProfileScannerOnly}},
		Targets: []simnet.IP{simnet.MustParseIP("100.64.0.99")},
		Timeout: time.Second,
	}
	stats := fleet.Run(context.Background())
	if stats.Sessions != 0 {
		t.Errorf("dead target counted %d sessions, want 0", stats.Sessions)
	}
	if stats.Errors != 1 || stats.BotsRun != 1 {
		t.Errorf("dead target stats: %+v", stats)
	}
}

// TestChaosCanceledCampaign: cancellation mid-campaign stops the fleet
// promptly, never underflows any stat, and never counts a session that
// wasn't dialed. Runs under the race detector in the chaos suite.
func TestChaosCanceledCampaign(t *testing.T) {
	nw, ip, _ := testTarget(t)
	ctx, cancel := context.WithCancel(context.Background())
	fleet := &Fleet{
		Network:     nw,
		Bots:        DefaultMix(457, 3, 0.30),
		Targets:     []simnet.IP{ip},
		Sessions:    5_000_000, // far more than can run before the cancel
		Concurrency: 16,
		Timeout:     5 * time.Second,
	}
	done := make(chan Stats, 1)
	go func() { done <- fleet.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	var stats Stats
	select {
	case stats = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fleet did not stop promptly after cancellation")
	}
	if stats.Sessions < 0 || stats.Errors < 0 || stats.BotsRun < 0 {
		t.Errorf("stats underflowed: %+v", stats)
	}
	if int64(stats.Sessions) >= fleet.Sessions {
		t.Errorf("canceled campaign claims the full budget: %d sessions", stats.Sessions)
	}
	for p, n := range stats.ByProfile {
		if n < 0 {
			t.Errorf("profile %v count underflowed: %d", p, n)
		}
	}
}

// TestChaosCanceledBeforeStart: a context canceled before Run begins yields
// an empty, well-formed Stats in both fleet shapes.
func TestChaosCanceledBeforeStart(t *testing.T) {
	nw, ip, _ := testTarget(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sessions := range []int64{0, 100} {
		fleet := &Fleet{
			Network:  nw,
			Bots:     DefaultMix(8, 3, 0.30),
			Targets:  []simnet.IP{ip},
			Sessions: sessions,
			Timeout:  time.Second,
		}
		stats := fleet.Run(ctx)
		if stats.Sessions != 0 || stats.Errors != 0 {
			t.Errorf("sessions=%d: pre-canceled run did work: %+v", sessions, stats)
		}
	}
}

// TestInflightPeakGauge: the high-water mark must see at least one session
// in flight and never exceed the concurrency cap.
func TestInflightPeakGauge(t *testing.T) {
	nw, ip, _ := testTarget(t)
	reg := obs.NewRegistry()
	fleet := &Fleet{
		Network:     nw,
		Bots:        DefaultMix(16, 5, 0.30),
		Targets:     []simnet.IP{ip},
		Sessions:    64,
		Concurrency: 4,
		Timeout:     5 * time.Second,
		Metrics:     reg,
	}
	fleet.Run(context.Background())
	snap := reg.Snapshot()
	peak := snap.Gauges["attacker.inflight_peak"]
	if peak < 1 || peak > 4 {
		t.Errorf("attacker.inflight_peak = %d, want within [1,4]", peak)
	}
	if got := snap.Gauges["attacker.inflight"]; got != 0 {
		t.Errorf("attacker.inflight = %d after run, want 0", got)
	}
	if got := snap.Counters["attacker.sessions"]; got != 64 {
		t.Errorf("attacker.sessions = %d, want 64", got)
	}
}

// TestSimulatedClockElapsed: an injected clock drives Stats.Elapsed, making
// campaign timing reproducible.
func TestSimulatedClockElapsed(t *testing.T) {
	nw, ip, _ := testTarget(t)
	tick := int64(0)
	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: 2, Profile: ProfileScannerOnly}},
		Targets: []simnet.IP{ip},
		Timeout: time.Second,
		Now: func() time.Time {
			tick++
			return time.Unix(1_450_000_000, 0).Add(time.Duration(tick) * time.Second)
		},
	}
	stats := fleet.Run(context.Background())
	if stats.Elapsed != time.Second {
		t.Errorf("Elapsed = %v, want 1s from the logical clock", stats.Elapsed)
	}
}
