// Package attacker simulates the malicious traffic §VIII's honeypots
// observed: Internet-background scanners, HTTP probes against port 21,
// credential guessers, anonymous write probers, staged ftpchk3 infections,
// PORT bouncers sharing one third-party target, CVE-2015-3306 probes, the
// Seagate root-login exploit, AUTH TLS device fingerprinting, and WaReZ
// directory creation.
//
// Bot behaviour profiles and their mix are calibrated to the paper's
// observed population: 457 unique scanning IPs, ~30% from one network, 85
// speaking FTP, 8 PORT bouncers aiming at the same address, 36 AUTH TLS
// fingerprinters, one CVE attempt, one Seagate attempt.
package attacker

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// Profile selects a bot behaviour.
type Profile int

// Bot profiles.
const (
	ProfileScannerOnly Profile = iota + 1
	ProfileHTTPProbe
	ProfileCredGuesser
	ProfileWriteProber
	ProfileTraverser
	ProfileFtpchk3
	ProfilePortBouncer
	ProfileCVEExploit
	ProfileSeagateRAT
	ProfileTLSFingerprint
	ProfileWarezMkdir
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileScannerOnly:
		return "scanner-only"
	case ProfileHTTPProbe:
		return "http-probe"
	case ProfileCredGuesser:
		return "credential-guesser"
	case ProfileWriteProber:
		return "write-prober"
	case ProfileTraverser:
		return "traverser"
	case ProfileFtpchk3:
		return "ftpchk3"
	case ProfilePortBouncer:
		return "port-bouncer"
	case ProfileCVEExploit:
		return "cve-exploit"
	case ProfileSeagateRAT:
		return "seagate-rat"
	case ProfileTLSFingerprint:
		return "tls-fingerprint"
	case ProfileWarezMkdir:
		return "warez-mkdir"
	default:
		return "unknown"
	}
}

// Bot is one attacking host.
type Bot struct {
	Source  simnet.IP
	Profile Profile
	// Seed varies per-bot choices (credentials, directory names).
	Seed uint64
}

// Fleet drives a set of bots against targets.
type Fleet struct {
	Network *simnet.Network
	Bots    []Bot
	Targets []simnet.IP
	// BounceTarget is the shared third-party address PORT bouncers use
	// (the paper saw all eight aim at one IP).
	BounceTarget ftp.HostPort
	// Timeout bounds each bot's control operations.
	Timeout time.Duration
	// Concurrency caps in-flight bot sessions; zero means 32. Campaigns
	// in the millions of sessions raise this toward the server core's 10k
	// budget.
	Concurrency int
	// Sessions, when positive, switches the fleet into campaign mode: the
	// bots collectively run exactly this many sessions, cycling over the
	// targets, instead of the legacy shape (every bot visits every target
	// exactly once). Session k is deterministically assigned bot k%len(Bots)
	// and a salted target, so campaigns replay identically.
	Sessions int64
	// Now is the campaign clock; nil means time.Now. Injecting a
	// simulated clock (honeypot.SimClock) makes interaction timelines
	// reproducible run to run.
	Now func() time.Time
	// Metrics, when non-nil, mirrors the run's aggregate Stats into
	// registry counters (attacker.bots, attacker.sessions,
	// attacker.errors) as bots complete, so live progress can watch an
	// attack campaign the way the census watches enumeration. The
	// attacker.inflight gauge tracks live sessions and
	// attacker.inflight_peak their high-water mark.
	Metrics *obs.Registry
}

// weakCredentials is the guessing dictionary; combined with per-bot suffix
// variation it yields the >1,400 unique pairs the paper observed.
var weakCredentials = [][2]string{
	{"admin", "admin"}, {"admin", "password"}, {"admin", "1234"},
	{"root", "root"}, {"root", "toor"}, {"user", "user"},
	{"test", "test"}, {"ftp", "ftp"}, {"guest", "guest"},
	{"admin", "admin123"}, {"administrator", "password"},
	{"www", "www"}, {"web", "web"}, {"oracle", "oracle"},
	{"pi", "raspberry"}, {"ubnt", "ubnt"},
}

// DefaultMix builds the §VIII-calibrated bot population: n total bots with
// concentrated sources (share from one /8) and the paper's profile counts
// scaled proportionally. The population is always exactly n bots: every
// profile — including the paper's singleton CVE and Seagate attackers —
// scales as count*n/457, so small fleets shed the rare profiles instead of
// overflowing n and starving the background-scanner remainder.
func DefaultMix(n int, seed uint64, concentratedShare float64) []Bot {
	if n <= 0 {
		n = 457
	}
	bots := make([]Bot, 0, n)
	// Profile mix per the paper: of 457 scanners, 85 spoke FTP; the
	// rest probed HTTP or only connected.
	counts := map[Profile]int{
		ProfilePortBouncer:    8 * n / 457,
		ProfileTLSFingerprint: 36 * n / 457,
		ProfileCVEExploit:     n / 457,
		ProfileSeagateRAT:     n / 457,
		ProfileCredGuesser:    24 * n / 457,
		ProfileWriteProber:    8 * n / 457,
		ProfileFtpchk3:        3 * n / 457,
		ProfileTraverser:      16 * n / 457,
		ProfileWarezMkdir:     3 * n / 457,
		ProfileHTTPProbe:      290 * n / 457,
	}
	// The scaled profile counts sum to at most 390*n/457 < n, so the
	// scanner-only remainder is never negative and len(bots) == n holds
	// for every n (TestDefaultMixExactN).
	total := 0
	for _, c := range counts {
		total += c
	}
	counts[ProfileScannerOnly] = n - total

	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	idx := 0
	for _, profile := range []Profile{
		ProfileScannerOnly, ProfileHTTPProbe, ProfileCredGuesser,
		ProfileWriteProber, ProfileTraverser, ProfileFtpchk3,
		ProfilePortBouncer, ProfileCVEExploit, ProfileSeagateRAT,
		ProfileTLSFingerprint, ProfileWarezMkdir,
	} {
		for i := 0; i < counts[profile]; i++ {
			var src simnet.IP
			if float64(idx) < concentratedShare*float64(n) {
				// The concentrated network: one /8 (the paper's
				// "China Unicom Henan Province Network" analogue).
				src = simnet.IPFromOctets(61, byte(next()%200), byte(next()%250), byte(1+next()%250))
			} else {
				src = simnet.IPFromOctets(byte(80+next()%100), byte(next()%250), byte(next()%250), byte(1+next()%250))
			}
			bots = append(bots, Bot{Source: src, Profile: profile, Seed: next()})
			idx++
		}
	}
	return bots
}

// Stats summarizes a fleet run.
type Stats struct {
	BotsRun   int
	Sessions  int
	Errors    int
	ByProfile map[Profile]int
	// Elapsed is the wall (or simulated, when Fleet.Now is injected)
	// duration of the run.
	Elapsed time.Duration
}

func (f *Fleet) now() time.Time {
	if f.Now != nil {
		return f.Now()
	}
	return time.Now()
}

// fleetRun is the per-run instrumentation shared by both fleet shapes.
type fleetRun struct {
	stats    *Stats
	mu       sync.Mutex
	sessions *obs.Counter
	errors   *obs.Counter
	inflight *obs.Gauge
	peak     *obs.Gauge
}

// session runs one bot visit with inflight accounting. Sessions count only
// visits that actually dialed: a canceled or refused dial is an error, not a
// session, so stats never claim interactions that produced no server-side
// events.
func (r *fleetRun) session(f *Fleet, b Bot, target simnet.IP, timeout time.Duration) {
	r.inflight.Inc()
	r.peak.SetMax(r.inflight.Load())
	dialed, err := f.visit(b, target, timeout)
	r.inflight.Dec()
	if dialed {
		r.sessions.Inc()
	}
	if err != nil {
		r.errors.Inc()
	}
	r.mu.Lock()
	if dialed {
		r.stats.Sessions++
	}
	if err != nil {
		r.stats.Errors++
	}
	r.mu.Unlock()
}

// Run executes the fleet. In the legacy shape every bot visits every target
// exactly once; in campaign mode (Sessions > 0) the bots collectively run
// exactly Sessions sessions, session k deterministically assigned to bot
// k%len(Bots) against a seed-salted target. Cancellation stops the fleet
// promptly: unclaimed sessions are abandoned and never counted.
func (f *Fleet) Run(ctx context.Context) Stats {
	stats := Stats{ByProfile: make(map[Profile]int)}
	start := f.now()
	timeout := f.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conc := f.Concurrency
	if conc <= 0 {
		conc = 32
	}
	run := &fleetRun{
		stats:    &stats,
		sessions: f.Metrics.Counter("attacker.sessions"),
		errors:   f.Metrics.Counter("attacker.errors"),
		inflight: f.Metrics.Gauge("attacker.inflight"),
		peak:     f.Metrics.Gauge("attacker.inflight_peak"),
	}
	if f.Sessions > 0 {
		f.runCampaign(ctx, run, timeout, conc)
	} else {
		f.runLegacy(ctx, run, timeout, conc)
	}
	stats.Elapsed = f.now().Sub(start)
	return stats
}

// runLegacy is the original fleet shape: one goroutine per bot, every bot
// visiting every target once, bounded by the concurrency cap.
func (f *Fleet) runLegacy(ctx context.Context, run *fleetRun, timeout time.Duration, conc int) {
	botsC := f.Metrics.Counter("attacker.bots")
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for _, bot := range f.Bots {
		wg.Add(1)
		go func(b Bot) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f.runBot(ctx, run, b, timeout)
			botsC.Inc()
			run.mu.Lock()
			run.stats.BotsRun++
			run.stats.ByProfile[b.Profile]++
			run.mu.Unlock()
		}(bot)
	}
	wg.Wait()
}

// runCampaign drives the session-budget shape: conc workers claim session
// indices from an atomic counter until the budget is spent or the context is
// canceled. Assignment is deterministic in the session index, so a campaign
// replays identically regardless of worker interleaving.
func (f *Fleet) runCampaign(ctx context.Context, run *fleetRun, timeout time.Duration, conc int) {
	if len(f.Bots) == 0 || len(f.Targets) == 0 {
		return
	}
	botsC := f.Metrics.Counter("attacker.bots")
	ran := make([]bool, len(f.Bots))
	var claim atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := claim.Add(1) - 1
				if k >= f.Sessions {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				bi := int(k % int64(len(f.Bots)))
				b := f.Bots[bi]
				target := f.Targets[int((uint64(k)*0x9e3779b97f4a7c15+b.Seed)%uint64(len(f.Targets)))]
				run.mu.Lock()
				if !ran[bi] {
					ran[bi] = true
					run.stats.BotsRun++
					run.stats.ByProfile[b.Profile]++
					botsC.Inc()
				}
				run.mu.Unlock()
				run.session(f, b, target, timeout)
			}
		}()
	}
	wg.Wait()
}

// runBot visits every target per the bot's profile (legacy shape).
func (f *Fleet) runBot(ctx context.Context, run *fleetRun, b Bot, timeout time.Duration) {
	for _, target := range f.Targets {
		select {
		case <-ctx.Done():
			return
		default:
		}
		run.session(f, b, target, timeout)
	}
}

// visit runs one bot session against one honeypot. dialed reports whether a
// connection was established — callers count sessions only when it is true.
func (f *Fleet) visit(b Bot, target simnet.IP, timeout time.Duration) (dialed bool, err error) {
	nc, err := f.Network.DialFrom(b.Source, target, 21)
	if err != nil {
		return false, err
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = timeout

	if _, err := c.ReadReply(); err != nil {
		return true, err
	}
	switch b.Profile {
	case ProfileScannerOnly:
		return true, nil
	case ProfileHTTPProbe:
		// Raw HTTP against the FTP port; the server logs the verb.
		if err := c.SendCommand("GET", "/ HTTP/1.0"); err != nil {
			return true, err
		}
		c.ReadReply()
		return true, nil
	case ProfileCredGuesser:
		return true, f.guessCredentials(c, b, target)
	case ProfileWriteProber:
		return true, f.writeProbe(c, b, target)
	case ProfileTraverser:
		return true, f.traverse(c, b)
	case ProfileFtpchk3:
		return true, f.ftpchk3(c, b, target)
	case ProfilePortBouncer:
		return true, f.portBounce(c)
	case ProfileCVEExploit:
		return true, f.cveProbe(c)
	case ProfileSeagateRAT:
		return true, f.seagate(c)
	case ProfileTLSFingerprint:
		return true, f.tlsFingerprint(c)
	case ProfileWarezMkdir:
		return true, f.warezMkdir(c, b)
	default:
		return true, fmt.Errorf("attacker: unknown profile %v", b.Profile)
	}
}

func anonLogin(c *ftp.Conn) error {
	if r, err := c.Cmd("USER", "anonymous"); err != nil || r.Code != ftp.CodeNeedPassword {
		return fmt.Errorf("attacker: USER rejected")
	}
	if r, err := c.Cmd("PASS", "mozilla@example.com"); err != nil || r.Code != ftp.CodeLoggedIn {
		return fmt.Errorf("attacker: PASS rejected")
	}
	return nil
}

func (f *Fleet) guessCredentials(c *ftp.Conn, b Bot, target simnet.IP) error {
	// Each guesser tries a slice of the dictionary plus variants salted
	// by bot and target — real campaigns rotate passwords per victim,
	// which is how the paper accumulated >1,400 unique pairs.
	for i := 0; i < 8; i++ {
		pair := weakCredentials[(int(b.Seed%uint64(len(weakCredentials)))+i)%len(weakCredentials)]
		user, pass := pair[0], pair[1]
		if i >= 3 {
			pass = fmt.Sprintf("%s%d", pass, (b.Seed>>8+uint64(target)*31+uint64(i))%100000)
		}
		if r, err := c.Cmd("USER", user); err != nil || r.Negative() {
			return err
		}
		if r, err := c.Cmd("PASS", pass); err != nil {
			return err
		} else if r.Code == ftp.CodeLoggedIn {
			return nil
		}
	}
	return nil
}

// openDataAndStore uploads content via PASV.
func openDataAndStore(f *Fleet, c *ftp.Conn, src simnet.IP, name string, content []byte) error {
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		return fmt.Errorf("attacker: PASV failed")
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		return err
	}
	dc, err := f.Network.Dial(src, hp.Addr())
	if err != nil {
		return err
	}
	defer dc.Close()
	if r, err := c.Cmd("STOR", name); err != nil || !r.Preliminary() {
		return fmt.Errorf("attacker: STOR refused")
	}
	if _, err := dc.Write(content); err != nil {
		return err
	}
	dc.Close()
	_, err = c.ReadReply()
	return err
}

func (f *Fleet) writeProbe(c *ftp.Conn, b Bot, target simnet.IP) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if err := openDataAndStore(f, c, b.Source, "hello.world.txt", []byte("aGVsbG8gd29ybGQ=")); err != nil {
		return err
	}
	// Probe campaigns delete their marker afterwards (§VIII.B).
	_, err := c.Cmd("DELE", "hello.world.txt")
	return err
}

func (f *Fleet) traverse(c *ftp.Conn, b Bot) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	// Blind traversal of web-root paths, as observed.
	for _, dir := range []string{"cgi-bin", "www", "public_html", "htdocs"} {
		c.Cmd("CWD", "/"+dir)
		c.Cmd("CWD", "/")
	}
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		return err
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		return err
	}
	dc, err := f.Network.Dial(b.Source, hp.Addr())
	if err != nil {
		return err
	}
	defer dc.Close()
	if r, err := c.Cmd("LIST", "/"); err != nil || !r.Preliminary() {
		return err
	}
	io.Copy(io.Discard, dc)
	c.ReadReply()
	return nil
}

func (f *Fleet) ftpchk3(c *ftp.Conn, b Bot, target simnet.IP) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if err := openDataAndStore(f, c, b.Source, "ftpchk3.txt", []byte("ftpchk3")); err != nil {
		return err
	}
	return openDataAndStore(f, c, b.Source, "ftpchk3.php", []byte(`<?php echo "OK"; ?>`))
}

func (f *Fleet) portBounce(c *ftp.Conn) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if r, err := c.Cmd("PORT", f.BounceTarget.Encode()); err != nil || r.Negative() {
		return err
	}
	if r, err := c.Cmd("LIST", "/"); err == nil && r.Preliminary() {
		c.ReadReply()
	}
	return nil
}

func (f *Fleet) cveProbe(c *ftp.Conn) error {
	// CVE-2015-3306: unauthenticated mod_copy SITE CPFR/CPTO.
	c.Cmd("SITE", "CPFR /etc/passwd")
	c.Cmd("SITE", "CPTO /tmp/.x")
	return nil
}

func (f *Fleet) seagate(c *ftp.Conn) error {
	// Seagate Central: root account without a password grants access.
	if r, err := c.Cmd("USER", "root"); err != nil || r.Negative() {
		return err
	}
	if r, err := c.Cmd("PASS", ""); err != nil || r.Code != ftp.CodeLoggedIn {
		return nil // honeypot rejects; the attempt is what gets recorded
	}
	return nil
}

func (f *Fleet) tlsFingerprint(c *ftp.Conn) error {
	r, err := c.Cmd("AUTH", "TLS")
	if err != nil || r.Code != ftp.CodeAuthOK {
		return err
	}
	tc := tls.Client(c.NetConn(), &tls.Config{InsecureSkipVerify: true})
	tc.SetDeadline(time.Now().Add(3 * time.Second))
	if err := tc.Handshake(); err != nil {
		return err
	}
	tc.Close()
	return nil
}

func (f *Fleet) warezMkdir(c *ftp.Conn, b Bot) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	name := fmt.Sprintf("%012dp", b.Seed%1_000_000_000_000)
	_, err := c.Cmd("MKD", "/"+name)
	return err
}
