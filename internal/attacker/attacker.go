// Package attacker simulates the malicious traffic §VIII's honeypots
// observed: Internet-background scanners, HTTP probes against port 21,
// credential guessers, anonymous write probers, staged ftpchk3 infections,
// PORT bouncers sharing one third-party target, CVE-2015-3306 probes, the
// Seagate root-login exploit, AUTH TLS device fingerprinting, and WaReZ
// directory creation.
//
// Bot behaviour profiles and their mix are calibrated to the paper's
// observed population: 457 unique scanning IPs, ~30% from one network, 85
// speaking FTP, 8 PORT bouncers aiming at the same address, 36 AUTH TLS
// fingerprinters, one CVE attempt, one Seagate attempt.
package attacker

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"sync"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/obs"
	"ftpcloud/internal/simnet"
)

// Profile selects a bot behaviour.
type Profile int

// Bot profiles.
const (
	ProfileScannerOnly Profile = iota + 1
	ProfileHTTPProbe
	ProfileCredGuesser
	ProfileWriteProber
	ProfileTraverser
	ProfileFtpchk3
	ProfilePortBouncer
	ProfileCVEExploit
	ProfileSeagateRAT
	ProfileTLSFingerprint
	ProfileWarezMkdir
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileScannerOnly:
		return "scanner-only"
	case ProfileHTTPProbe:
		return "http-probe"
	case ProfileCredGuesser:
		return "credential-guesser"
	case ProfileWriteProber:
		return "write-prober"
	case ProfileTraverser:
		return "traverser"
	case ProfileFtpchk3:
		return "ftpchk3"
	case ProfilePortBouncer:
		return "port-bouncer"
	case ProfileCVEExploit:
		return "cve-exploit"
	case ProfileSeagateRAT:
		return "seagate-rat"
	case ProfileTLSFingerprint:
		return "tls-fingerprint"
	case ProfileWarezMkdir:
		return "warez-mkdir"
	default:
		return "unknown"
	}
}

// Bot is one attacking host.
type Bot struct {
	Source  simnet.IP
	Profile Profile
	// Seed varies per-bot choices (credentials, directory names).
	Seed uint64
}

// Fleet drives a set of bots against targets.
type Fleet struct {
	Network *simnet.Network
	Bots    []Bot
	Targets []simnet.IP
	// BounceTarget is the shared third-party address PORT bouncers use
	// (the paper saw all eight aim at one IP).
	BounceTarget ftp.HostPort
	// Timeout bounds each bot's control operations.
	Timeout time.Duration
	// Metrics, when non-nil, mirrors the run's aggregate Stats into
	// registry counters (attacker.bots, attacker.sessions,
	// attacker.errors) as bots complete, so live progress can watch an
	// attack campaign the way the census watches enumeration.
	Metrics *obs.Registry
}

// weakCredentials is the guessing dictionary; combined with per-bot suffix
// variation it yields the >1,400 unique pairs the paper observed.
var weakCredentials = [][2]string{
	{"admin", "admin"}, {"admin", "password"}, {"admin", "1234"},
	{"root", "root"}, {"root", "toor"}, {"user", "user"},
	{"test", "test"}, {"ftp", "ftp"}, {"guest", "guest"},
	{"admin", "admin123"}, {"administrator", "password"},
	{"www", "www"}, {"web", "web"}, {"oracle", "oracle"},
	{"pi", "raspberry"}, {"ubnt", "ubnt"},
}

// DefaultMix builds the §VIII-calibrated bot population: n total bots with
// concentrated sources (share from one /8) and the paper's profile counts
// scaled proportionally.
func DefaultMix(n int, seed uint64, concentratedShare float64) []Bot {
	if n <= 0 {
		n = 457
	}
	bots := make([]Bot, 0, n)
	// Profile mix per the paper: of 457 scanners, 85 spoke FTP; the
	// rest probed HTTP or only connected.
	counts := map[Profile]int{
		ProfilePortBouncer:    8 * n / 457,
		ProfileTLSFingerprint: 36 * n / 457,
		ProfileCVEExploit:     1,
		ProfileSeagateRAT:     1,
		ProfileCredGuesser:    24 * n / 457,
		ProfileWriteProber:    8 * n / 457,
		ProfileFtpchk3:        3 * n / 457,
		ProfileTraverser:      16 * n / 457,
		ProfileWarezMkdir:     3 * n / 457,
		ProfileHTTPProbe:      290 * n / 457,
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	counts[ProfileScannerOnly] = n - total
	if counts[ProfileScannerOnly] < 0 {
		counts[ProfileScannerOnly] = 0
	}

	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	idx := 0
	for _, profile := range []Profile{
		ProfileScannerOnly, ProfileHTTPProbe, ProfileCredGuesser,
		ProfileWriteProber, ProfileTraverser, ProfileFtpchk3,
		ProfilePortBouncer, ProfileCVEExploit, ProfileSeagateRAT,
		ProfileTLSFingerprint, ProfileWarezMkdir,
	} {
		for i := 0; i < counts[profile]; i++ {
			var src simnet.IP
			if float64(idx) < concentratedShare*float64(n) {
				// The concentrated network: one /8 (the paper's
				// "China Unicom Henan Province Network" analogue).
				src = simnet.IPFromOctets(61, byte(next()%200), byte(next()%250), byte(1+next()%250))
			} else {
				src = simnet.IPFromOctets(byte(80+next()%100), byte(next()%250), byte(next()%250), byte(1+next()%250))
			}
			bots = append(bots, Bot{Source: src, Profile: profile, Seed: next()})
			idx++
		}
	}
	return bots
}

// Stats summarizes a fleet run.
type Stats struct {
	BotsRun   int
	Sessions  int
	Errors    int
	ByProfile map[Profile]int
}

// Run executes every bot against every target (scanners hit all targets;
// heavier profiles hit a subset to mirror observed behaviour).
func (f *Fleet) Run(ctx context.Context) Stats {
	stats := Stats{ByProfile: make(map[Profile]int)}
	timeout := f.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	botsC := f.Metrics.Counter("attacker.bots")
	sessionsC := f.Metrics.Counter("attacker.sessions")
	errorsC := f.Metrics.Counter("attacker.errors")
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 32)
	for _, bot := range f.Bots {
		wg.Add(1)
		go func(b Bot) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sessions, errs := f.runBot(ctx, b, timeout)
			botsC.Inc()
			sessionsC.Add(uint64(sessions))
			errorsC.Add(uint64(errs))
			mu.Lock()
			stats.BotsRun++
			stats.Sessions += sessions
			stats.Errors += errs
			stats.ByProfile[b.Profile]++
			mu.Unlock()
		}(bot)
	}
	wg.Wait()
	return stats
}

// runBot visits targets per the bot's profile.
func (f *Fleet) runBot(ctx context.Context, b Bot, timeout time.Duration) (sessions, errs int) {
	for _, target := range f.Targets {
		select {
		case <-ctx.Done():
			return sessions, errs
		default:
		}
		if err := f.visit(b, target, timeout); err != nil {
			errs++
		}
		sessions++
	}
	return sessions, errs
}

// visit runs one bot session against one honeypot.
func (f *Fleet) visit(b Bot, target simnet.IP, timeout time.Duration) error {
	nc, err := f.Network.DialFrom(b.Source, target, 21)
	if err != nil {
		return err
	}
	defer nc.Close()
	c := ftp.NewConn(nc)
	c.Timeout = timeout

	if _, err := c.ReadReply(); err != nil {
		return err
	}
	switch b.Profile {
	case ProfileScannerOnly:
		return nil
	case ProfileHTTPProbe:
		// Raw HTTP against the FTP port; the server logs the verb.
		if err := c.SendCommand("GET", "/ HTTP/1.0"); err != nil {
			return err
		}
		c.ReadReply()
		return nil
	case ProfileCredGuesser:
		return f.guessCredentials(c, b, target)
	case ProfileWriteProber:
		return f.writeProbe(c, b, target)
	case ProfileTraverser:
		return f.traverse(c, b)
	case ProfileFtpchk3:
		return f.ftpchk3(c, b, target)
	case ProfilePortBouncer:
		return f.portBounce(c)
	case ProfileCVEExploit:
		return f.cveProbe(c)
	case ProfileSeagateRAT:
		return f.seagate(c)
	case ProfileTLSFingerprint:
		return f.tlsFingerprint(c)
	case ProfileWarezMkdir:
		return f.warezMkdir(c, b)
	default:
		return fmt.Errorf("attacker: unknown profile %v", b.Profile)
	}
}

func anonLogin(c *ftp.Conn) error {
	if r, err := c.Cmd("USER", "anonymous"); err != nil || r.Code != ftp.CodeNeedPassword {
		return fmt.Errorf("attacker: USER rejected")
	}
	if r, err := c.Cmd("PASS", "mozilla@example.com"); err != nil || r.Code != ftp.CodeLoggedIn {
		return fmt.Errorf("attacker: PASS rejected")
	}
	return nil
}

func (f *Fleet) guessCredentials(c *ftp.Conn, b Bot, target simnet.IP) error {
	// Each guesser tries a slice of the dictionary plus variants salted
	// by bot and target — real campaigns rotate passwords per victim,
	// which is how the paper accumulated >1,400 unique pairs.
	for i := 0; i < 8; i++ {
		pair := weakCredentials[(int(b.Seed%uint64(len(weakCredentials)))+i)%len(weakCredentials)]
		user, pass := pair[0], pair[1]
		if i >= 3 {
			pass = fmt.Sprintf("%s%d", pass, (b.Seed>>8+uint64(target)*31+uint64(i))%100000)
		}
		if r, err := c.Cmd("USER", user); err != nil || r.Negative() {
			return err
		}
		if r, err := c.Cmd("PASS", pass); err != nil {
			return err
		} else if r.Code == ftp.CodeLoggedIn {
			return nil
		}
	}
	return nil
}

// openDataAndStore uploads content via PASV.
func openDataAndStore(f *Fleet, c *ftp.Conn, src simnet.IP, name string, content []byte) error {
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		return fmt.Errorf("attacker: PASV failed")
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		return err
	}
	dc, err := f.Network.Dial(src, hp.Addr())
	if err != nil {
		return err
	}
	defer dc.Close()
	if r, err := c.Cmd("STOR", name); err != nil || !r.Preliminary() {
		return fmt.Errorf("attacker: STOR refused")
	}
	if _, err := dc.Write(content); err != nil {
		return err
	}
	dc.Close()
	_, err = c.ReadReply()
	return err
}

func (f *Fleet) writeProbe(c *ftp.Conn, b Bot, target simnet.IP) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if err := openDataAndStore(f, c, b.Source, "hello.world.txt", []byte("aGVsbG8gd29ybGQ=")); err != nil {
		return err
	}
	// Probe campaigns delete their marker afterwards (§VIII.B).
	_, err := c.Cmd("DELE", "hello.world.txt")
	return err
}

func (f *Fleet) traverse(c *ftp.Conn, b Bot) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	// Blind traversal of web-root paths, as observed.
	for _, dir := range []string{"cgi-bin", "www", "public_html", "htdocs"} {
		c.Cmd("CWD", "/"+dir)
		c.Cmd("CWD", "/")
	}
	r, err := c.Cmd("PASV", "")
	if err != nil || r.Code != ftp.CodePassive {
		return err
	}
	hp, err := ftp.ParsePASVReply(r.Text())
	if err != nil {
		return err
	}
	dc, err := f.Network.Dial(b.Source, hp.Addr())
	if err != nil {
		return err
	}
	defer dc.Close()
	if r, err := c.Cmd("LIST", "/"); err != nil || !r.Preliminary() {
		return err
	}
	io.Copy(io.Discard, dc)
	c.ReadReply()
	return nil
}

func (f *Fleet) ftpchk3(c *ftp.Conn, b Bot, target simnet.IP) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if err := openDataAndStore(f, c, b.Source, "ftpchk3.txt", []byte("ftpchk3")); err != nil {
		return err
	}
	return openDataAndStore(f, c, b.Source, "ftpchk3.php", []byte(`<?php echo "OK"; ?>`))
}

func (f *Fleet) portBounce(c *ftp.Conn) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	if r, err := c.Cmd("PORT", f.BounceTarget.Encode()); err != nil || r.Negative() {
		return err
	}
	if r, err := c.Cmd("LIST", "/"); err == nil && r.Preliminary() {
		c.ReadReply()
	}
	return nil
}

func (f *Fleet) cveProbe(c *ftp.Conn) error {
	// CVE-2015-3306: unauthenticated mod_copy SITE CPFR/CPTO.
	c.Cmd("SITE", "CPFR /etc/passwd")
	c.Cmd("SITE", "CPTO /tmp/.x")
	return nil
}

func (f *Fleet) seagate(c *ftp.Conn) error {
	// Seagate Central: root account without a password grants access.
	if r, err := c.Cmd("USER", "root"); err != nil || r.Negative() {
		return err
	}
	if r, err := c.Cmd("PASS", ""); err != nil || r.Code != ftp.CodeLoggedIn {
		return nil // honeypot rejects; the attempt is what gets recorded
	}
	return nil
}

func (f *Fleet) tlsFingerprint(c *ftp.Conn) error {
	r, err := c.Cmd("AUTH", "TLS")
	if err != nil || r.Code != ftp.CodeAuthOK {
		return err
	}
	tc := tls.Client(c.NetConn(), &tls.Config{InsecureSkipVerify: true})
	tc.SetDeadline(time.Now().Add(3 * time.Second))
	if err := tc.Handshake(); err != nil {
		return err
	}
	tc.Close()
	return nil
}

func (f *Fleet) warezMkdir(c *ftp.Conn, b Bot) error {
	if err := anonLogin(c); err != nil {
		return err
	}
	name := fmt.Sprintf("%012dp", b.Seed%1_000_000_000_000)
	_, err := c.Cmd("MKD", "/"+name)
	return err
}
