package attacker

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/certs"
	"ftpcloud/internal/ftp"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

// TestAllProfilesRunCleanly drives one bot of every profile against a
// TLS-capable writable honeypot-like target and requires zero errors.
func TestAllProfilesRunCleanly(t *testing.T) {
	pool, err := certs.GeneratePool(6, []certs.Spec{
		{Name: "c", CommonName: "target.example.org", SelfSigned: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ip := simnet.MustParseIP("100.64.2.1")
	root := vfs.NewDir("/", vfs.Perm777)
	root.Add(vfs.NewDir("public_html", vfs.Perm777))
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             vfs.New(root),
		PublicIP:       ip,
		AllowAnonymous: true,
		AnonWritable:   true,
		Cert:           pool.Get("c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	profiles := []Profile{
		ProfileScannerOnly, ProfileHTTPProbe, ProfileCredGuesser,
		ProfileWriteProber, ProfileTraverser, ProfileFtpchk3,
		ProfilePortBouncer, ProfileCVEExploit, ProfileSeagateRAT,
		ProfileTLSFingerprint, ProfileWarezMkdir,
	}
	bots := make([]Bot, len(profiles))
	for i, p := range profiles {
		bots[i] = Bot{Source: simnet.IP(0x09000001 + uint32(i)), Profile: p, Seed: uint64(i + 1)}
	}
	fleet := &Fleet{
		Network:      nw,
		Bots:         bots,
		Targets:      []simnet.IP{ip},
		BounceTarget: ftp.HostPort{IP: [4]byte{203, 0, 113, 66}, Port: 9999},
		Timeout:      5 * time.Second,
	}
	stats := fleet.Run(context.Background())
	if stats.BotsRun != len(profiles) {
		t.Errorf("bots run = %d", stats.BotsRun)
	}
	// The bounce target does not exist, so the bouncer's LIST leg fails
	// at the server side, not the bot; tolerate at most that error.
	if stats.Errors > 1 {
		t.Errorf("errors = %d (profiles should handle this target)", stats.Errors)
	}
	if stats.Sessions != len(profiles) {
		t.Errorf("sessions = %d", stats.Sessions)
	}
	if len(stats.ByProfile) != len(profiles) {
		t.Errorf("profiles recorded = %d", len(stats.ByProfile))
	}
}

// TestCredentialGuesserSucceedsOnWeakTarget verifies the guesser actually
// logs in when a dictionary credential matches.
func TestCredentialGuesserSucceedsOnWeakTarget(t *testing.T) {
	ip := simnet.MustParseIP("100.64.2.2")
	rec := &eventRecorder{}
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:     personality.ByKey(personality.KeyProFTPD135),
		FS:       vfs.New(nil),
		PublicIP: ip,
		Users:    map[string]string{"admin": "admin"},
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	nw := simnet.NewNetwork(provider)

	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: simnet.MustParseIP("9.2.2.2"), Profile: ProfileCredGuesser, Seed: 0}},
		Targets: []simnet.IP{ip},
		Timeout: 5 * time.Second,
	}
	fleet.Run(context.Background())
	if !rec.sawLogin {
		t.Error("guesser never hit the weak credential (seed 0 starts at admin/admin)")
	}
}

type eventRecorder struct{ sawLogin bool }

func (r *eventRecorder) Event(e ftpserver.Event) {
	if e.Kind == ftpserver.EventLoginOK {
		r.sawLogin = true
	}
}
