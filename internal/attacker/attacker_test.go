package attacker

import (
	"context"
	"testing"
	"time"

	"ftpcloud/internal/ftp"
	"ftpcloud/internal/ftpserver"
	"ftpcloud/internal/personality"
	"ftpcloud/internal/simnet"
	"ftpcloud/internal/vfs"
)

func testTarget(t *testing.T) (*simnet.Network, simnet.IP, *vfs.FS) {
	t.Helper()
	ip := simnet.MustParseIP("100.64.0.1")
	root := vfs.NewDir("/", vfs.Perm777)
	root.Add(vfs.NewDir("public_html", vfs.Perm777))
	fs := vfs.New(root)
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyProFTPD135),
		FS:             fs,
		PublicIP:       ip,
		AllowAnonymous: true,
		AnonWritable:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := simnet.NewStaticProvider()
	provider.Add(ip, 21, srv.SimHandler())
	return simnet.NewNetwork(provider), ip, fs
}

func TestDefaultMixComposition(t *testing.T) {
	bots := DefaultMix(457, 42, 0.30)
	if len(bots) != 457 {
		t.Fatalf("bots = %d", len(bots))
	}
	byProfile := map[Profile]int{}
	concentrated := 0
	for _, b := range bots {
		byProfile[b.Profile]++
		if b.Source>>24 == 61 {
			concentrated++
		}
	}
	if byProfile[ProfileCVEExploit] != 1 || byProfile[ProfileSeagateRAT] != 1 {
		t.Errorf("rare profiles: %+v", byProfile)
	}
	if byProfile[ProfilePortBouncer] != 8 {
		t.Errorf("port bouncers = %d, want 8", byProfile[ProfilePortBouncer])
	}
	if byProfile[ProfileTLSFingerprint] != 36 {
		t.Errorf("tls fingerprinters = %d, want 36", byProfile[ProfileTLSFingerprint])
	}
	share := float64(concentrated) / 457
	if share < 0.25 || share > 0.35 {
		t.Errorf("concentrated share = %.2f", share)
	}
	if byProfile[ProfileScannerOnly] == 0 || byProfile[ProfileHTTPProbe] == 0 {
		t.Errorf("background scanners missing: %+v", byProfile)
	}
}

func TestDefaultMixDefaultN(t *testing.T) {
	if got := len(DefaultMix(0, 1, 0.3)); got != 457 {
		t.Errorf("default n = %d", got)
	}
}

func TestWriteProberLeavesNoMarker(t *testing.T) {
	nw, ip, fs := testTarget(t)
	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: simnet.MustParseIP("9.1.1.1"), Profile: ProfileWriteProber, Seed: 5}},
		Targets: []simnet.IP{ip},
		Timeout: 5 * time.Second,
	}
	stats := fleet.Run(context.Background())
	if stats.Errors != 0 {
		t.Fatalf("errors: %d", stats.Errors)
	}
	// Probe uploads hello.world.txt then deletes it.
	if fs.Lookup("/hello.world.txt") != nil {
		t.Error("probe marker not deleted")
	}
}

func TestFtpchk3LeavesStages(t *testing.T) {
	nw, ip, fs := testTarget(t)
	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: simnet.MustParseIP("9.1.1.2"), Profile: ProfileFtpchk3, Seed: 5}},
		Targets: []simnet.IP{ip},
		Timeout: 5 * time.Second,
	}
	fleet.Run(context.Background())
	if fs.Lookup("/ftpchk3.txt") == nil || fs.Lookup("/ftpchk3.php") == nil {
		t.Error("ftpchk3 stages missing")
	}
}

func TestWarezMkdirCreatesSignatureDir(t *testing.T) {
	nw, ip, fs := testTarget(t)
	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: simnet.MustParseIP("9.1.1.3"), Profile: ProfileWarezMkdir, Seed: 987654321}},
		Targets: []simnet.IP{ip},
		Timeout: 5 * time.Second,
	}
	fleet.Run(context.Background())
	found := false
	fs.Root().Walk("/", func(p string, n *vfs.Node) bool {
		if n.IsDir && len(n.Name) == 13 && n.Name[12] == 'p' {
			found = true
		}
		return true
	})
	if !found {
		t.Error("warez directory not created")
	}
}

func TestPortBouncerHitsTarget(t *testing.T) {
	nw, ip, _ := testTarget(t)
	third := simnet.MustParseIP("203.0.113.66")
	l, err := nw.Listen(third, 9999)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	hit := make(chan struct{}, 1)
	go func() {
		if conn, err := l.Accept(); err == nil {
			conn.Close()
			hit <- struct{}{}
		}
	}()
	// The ProFTPD target validates PORT, so the bounce is rejected —
	// switch to a vulnerable personality for this test.
	vulnIP := simnet.MustParseIP("100.64.0.9")
	srv, err := ftpserver.New(ftpserver.Config{
		Pers:           personality.ByKey(personality.KeyHostedHomePL),
		FS:             vfs.New(nil),
		PublicIP:       vulnIP,
		AllowAnonymous: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the same provider via a fresh registration.
	provider := simnet.NewStaticProvider()
	provider.Add(vulnIP, 21, srv.SimHandler())
	nw.SetProvider(provider)
	_ = ip

	fleet := &Fleet{
		Network:      nw,
		Bots:         []Bot{{Source: simnet.MustParseIP("9.1.1.4"), Profile: ProfilePortBouncer, Seed: 1}},
		Targets:      []simnet.IP{vulnIP},
		BounceTarget: ftp.HostPort{IP: third.Octets(), Port: 9999},
		Timeout:      5 * time.Second,
	}
	fleet.Run(context.Background())
	select {
	case <-hit:
	case <-time.After(3 * time.Second):
		t.Fatal("third party never contacted")
	}
}

func TestProfileStrings(t *testing.T) {
	profiles := []Profile{
		ProfileScannerOnly, ProfileHTTPProbe, ProfileCredGuesser, ProfileWriteProber,
		ProfileTraverser, ProfileFtpchk3, ProfilePortBouncer, ProfileCVEExploit,
		ProfileSeagateRAT, ProfileTLSFingerprint, ProfileWarezMkdir, Profile(0),
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("profile %d name %q", p, s)
		}
		seen[s] = true
	}
}

func TestFleetAgainstDeadTarget(t *testing.T) {
	nw := simnet.NewNetwork(nil)
	fleet := &Fleet{
		Network: nw,
		Bots:    []Bot{{Source: 1, Profile: ProfileScannerOnly}},
		Targets: []simnet.IP{simnet.MustParseIP("100.64.0.99")},
		Timeout: time.Second,
	}
	stats := fleet.Run(context.Background())
	if stats.Errors != 1 {
		t.Errorf("dead target errors = %d", stats.Errors)
	}
}
