package certs

import (
	"crypto/tls"
	"net"
	"testing"
)

func testSpecs() []Spec {
	return []Spec{
		{Name: "homepl-wildcard", CommonName: "*.home.pl", SelfSigned: false},
		{Name: "qnap-shared", CommonName: "QNAP NAS", SelfSigned: true},
		{Name: "localhost", CommonName: "localhost", SelfSigned: true},
	}
}

func TestGeneratePool(t *testing.T) {
	pool, err := GeneratePool(7, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 3 {
		t.Errorf("Len = %d", pool.Len())
	}
	c := pool.Get("homepl-wildcard")
	if c == nil {
		t.Fatal("missing cert")
	}
	if c.CommonName != "*.home.pl" || c.Leaf.Subject.CommonName != "*.home.pl" {
		t.Errorf("CN = %q / %q", c.CommonName, c.Leaf.Subject.CommonName)
	}
	if c.SelfSigned {
		t.Error("CA-signed cert marked self-signed")
	}
	if !pool.IsTrusted(c.Leaf) {
		t.Error("CA-signed cert not trusted")
	}
	ss := pool.Get("qnap-shared")
	if !ss.SelfSigned {
		t.Error("self-signed cert not marked")
	}
	if pool.IsTrusted(ss.Leaf) {
		t.Error("self-signed cert should not be trusted")
	}
	if pool.Get("ghost") != nil {
		t.Error("phantom cert")
	}
	names := pool.Names()
	if len(names) != 3 || names[0] != "homepl-wildcard" {
		t.Errorf("Names = %v", names)
	}
}

func TestFingerprintsDistinct(t *testing.T) {
	pool, err := GeneratePool(7, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[32]byte]string)
	for _, name := range pool.Names() {
		c := pool.Get(name)
		if prev, dup := seen[c.Fingerprint]; dup {
			t.Errorf("certs %q and %q share a fingerprint", prev, name)
		}
		seen[c.Fingerprint] = name
	}
}

func TestDeterminism(t *testing.T) {
	a, err := GeneratePool(42, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePool(42, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	// Key material must reproduce per seed. (Outer DER bytes may differ
	// because Go's ECDSA signer is intentionally randomized.)
	if a.Get("localhost").PrivateKey.D.Cmp(b.Get("localhost").PrivateKey.D) != 0 {
		t.Error("same seed produced different keys")
	}
	if a.Get("localhost").Leaf.SerialNumber.Cmp(b.Get("localhost").Leaf.SerialNumber) != 0 {
		t.Error("same seed produced different serials")
	}
	c, err := GeneratePool(43, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if a.Get("localhost").PrivateKey.D.Cmp(c.Get("localhost").PrivateKey.D) == 0 {
		t.Error("different seeds produced identical keys")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := GeneratePool(1, []Spec{{Name: "", CommonName: "x"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := GeneratePool(1, []Spec{
		{Name: "dup", CommonName: "a"},
		{Name: "dup", CommonName: "b"},
	}); err == nil {
		t.Error("duplicate name accepted")
	}
}

// TestTLSHandshake proves the minted certificates drive a real crypto/tls
// handshake — the same path AUTH TLS uses in the simulation.
func TestTLSHandshake(t *testing.T) {
	pool, err := GeneratePool(9, testSpecs())
	if err != nil {
		t.Fatal(err)
	}
	cert := pool.Get("homepl-wildcard")

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	srvConf := &tls.Config{Certificates: []tls.Certificate{cert.TLSCertificate()}}
	cliConf := &tls.Config{InsecureSkipVerify: true} // enumerator collects, never trusts

	errCh := make(chan error, 1)
	go func() {
		s := tls.Server(server, srvConf)
		errCh <- s.Handshake()
	}()
	c := tls.Client(client, cliConf)
	if err := c.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	peer := c.ConnectionState().PeerCertificates
	if len(peer) == 0 || peer[0].Subject.CommonName != "*.home.pl" {
		t.Fatalf("peer certs: %v", peer)
	}
}
