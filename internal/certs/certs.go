// Package certs generates the X.509 certificate population of a simulated
// world. The paper's FTPS findings hinge on certificate *sharing*: hosting
// providers reuse one browser-trusted wildcard certificate across all shared
// servers, and device manufacturers ship one identical certificate (and
// private key) in every unit. A Pool therefore holds a small set of named
// certificates that the world generator assigns to many hosts.
//
// Certificates are real (crypto/x509, ECDSA P-256). The full DER encoding
// — key material, subjects, and the outer ECDSA signature — is
// deterministic for a given seed, so fingerprints are stable across
// processes. That last property is load-bearing: streamed census ledgers
// record certificate fingerprints, and checkpoint/resume promises a
// resumed run's ledger is byte-identical to an uninterrupted one even
// though the two halves come from different processes.
package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"time"
)

// Spec describes one certificate to mint.
type Spec struct {
	// Name is the pool key the world generator assigns to hosts.
	Name string
	// CommonName is the certificate subject CN, e.g. "*.home.pl".
	CommonName string
	// SelfSigned certificates are their own issuer; others are signed by
	// the pool's simulated CA and count as browser-trusted.
	SelfSigned bool
}

// Cert is one minted certificate with its private key.
type Cert struct {
	Name        string
	CommonName  string
	SelfSigned  bool
	DER         []byte
	Leaf        *x509.Certificate
	PrivateKey  *ecdsa.PrivateKey
	Fingerprint [32]byte // SHA-256 of the DER encoding
}

// TLSCertificate adapts the cert for use in a tls.Config.
func (c *Cert) TLSCertificate() tls.Certificate {
	return tls.Certificate{
		Certificate: [][]byte{c.DER},
		PrivateKey:  c.PrivateKey,
		Leaf:        c.Leaf,
	}
}

// Pool is a named collection of certificates plus the CA that signed the
// trusted ones.
type Pool struct {
	CA    *Cert
	certs map[string]*Cert
	order []string
}

// seededReader is a deterministic byte stream for key generation. It is NOT
// cryptographically secure — the simulation needs reproducibility, not
// secrecy.
type seededReader struct {
	state [4]uint64
}

func newSeededReader(seed uint64) *seededReader {
	r := &seededReader{}
	// splitmix64 expansion of the seed into xoshiro-like state.
	s := seed
	for i := range r.state {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.state[i] = z ^ (z >> 31)
	}
	return r
}

func (r *seededReader) next() uint64 {
	// xoshiro256**
	s := &r.state
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Read implements io.Reader.
func (r *seededReader) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], r.next())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

var _ io.Reader = (*seededReader)(nil)

// constReader yields one byte, forever. Go's signing path deliberately
// consumes a nondeterministic number of bytes from its entropy reader
// (crypto/internal/randutil.MaybeReadByte), so any position-dependent
// stream yields run-to-run signature bytes. A period-1 stream is immune:
// however many bytes the signer skips, the entropy it reads is identical,
// so the hedged ECDSA nonce — and with it the DER and fingerprint — is
// reproducible.
type constReader byte

func (c constReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(c)
	}
	return len(p), nil
}

// deriveKey builds an ECDSA P-256 key directly from the seeded stream.
// ecdsa.GenerateKey cannot be used: Go's crypto intentionally perturbs its
// reader (randutil.MaybeReadByte) to defeat exactly this kind of
// determinism, but reproducible worlds require stable keys per seed.
func deriveKey(rng io.Reader) (*ecdsa.PrivateKey, error) {
	curve := elliptic.P256()
	buf := make([]byte, 40)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	n := curve.Params().N
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, new(big.Int).Sub(n, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	key := &ecdsa.PrivateKey{D: d}
	key.Curve = curve
	key.X, key.Y = curve.ScalarBaseMult(d.Bytes())
	return key, nil
}

// notBefore anchors certificate validity around the paper's scan window.
var notBefore = time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

// GeneratePool mints all specified certificates deterministically from seed.
//
// Each certificate draws key material from its own reader derived from
// (seed, index): the x509 signing path consumes a nondeterministic number of
// bytes from whatever reader it is given (crypto/internal/randutil), so a
// single shared stream would let one cert's signing perturb the next cert's
// key.
func GeneratePool(seed uint64, specs []Spec) (*Pool, error) {
	pool := &Pool{certs: make(map[string]*Cert, len(specs))}

	ca, err := mint(newSeededReader(seed), "ca", "Simulated Trust Services CA", nil, nil, true)
	if err != nil {
		return nil, fmt.Errorf("certs: minting CA: %w", err)
	}
	pool.CA = ca

	for i, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("certs: spec with empty name (CN %q)", spec.CommonName)
		}
		if _, dup := pool.certs[spec.Name]; dup {
			return nil, fmt.Errorf("certs: duplicate spec name %q", spec.Name)
		}
		var issuer *Cert
		if !spec.SelfSigned {
			issuer = ca
		}
		rng := newSeededReader(seed ^ (0x5bf03635 + uint64(i+1)*0x9e3779b97f4a7c15))
		c, err := mint(rng, spec.Name, spec.CommonName, issuer, nil, false)
		if err != nil {
			return nil, fmt.Errorf("certs: minting %q: %w", spec.Name, err)
		}
		c.SelfSigned = spec.SelfSigned
		pool.certs[spec.Name] = c
		pool.order = append(pool.order, spec.Name)
	}
	return pool, nil
}

// mint creates one certificate. A nil issuer produces a self-signed cert;
// isCA marks CA certificates.
func mint(rng io.Reader, name, cn string, issuer *Cert, _ []string, isCA bool) (*Cert, error) {
	key, err := deriveKey(rng)
	if err != nil {
		return nil, err
	}
	var serialBytes [8]byte
	if _, err := io.ReadFull(rng, serialBytes[:]); err != nil {
		return nil, err
	}
	serial := new(big.Int).SetBytes(serialBytes[:])

	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: cn, Organization: []string{"ftpcloud-sim"}},
		NotBefore:             notBefore,
		NotAfter:              notBefore.AddDate(10, 0, 0),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:              []string{cn},
		IsCA:                  isCA,
		BasicConstraintsValid: true,
	}
	if isCA {
		tmpl.KeyUsage |= x509.KeyUsageCertSign
	}

	parent := tmpl
	signKey := key
	if issuer != nil {
		parent = issuer.Leaf
		signKey = issuer.PrivateKey
	}
	// Signing entropy comes from a constant stream (seeded per cert) so the
	// signature bytes are deterministic; see constReader.
	var sigByte [1]byte
	if _, err := io.ReadFull(rng, sigByte[:]); err != nil {
		return nil, err
	}
	der, err := x509.CreateCertificate(constReader(sigByte[0]), tmpl, parent, &key.PublicKey, signKey)
	if err != nil {
		return nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Cert{
		Name:        name,
		CommonName:  cn,
		SelfSigned:  issuer == nil,
		DER:         der,
		Leaf:        leaf,
		PrivateKey:  key,
		Fingerprint: sha256.Sum256(der),
	}, nil
}

// Get returns the named certificate, or nil.
func (p *Pool) Get(name string) *Cert { return p.certs[name] }

// Names returns the pool's certificate names in creation order.
func (p *Pool) Names() []string { return append([]string(nil), p.order...) }

// Len returns the number of certificates (excluding the CA).
func (p *Pool) Len() int { return len(p.certs) }

// IsTrusted reports whether a presented certificate chains to the pool CA
// (the simulation's notion of "browser-trusted").
func (p *Pool) IsTrusted(leaf *x509.Certificate) bool {
	if p.CA == nil {
		return false
	}
	return leaf.CheckSignatureFrom(p.CA.Leaf) == nil
}
