package report

import (
	"strings"
	"testing"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/asdb"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Title", "A", "LongHeader")
	tab.Row("x", 1)
	tab.Row("longer-cell", 22.5)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines: %q", lines)
	}
	if !strings.HasPrefix(lines[0], "Title") {
		t.Errorf("title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "LongHeader") {
		t.Errorf("header: %q", lines[1])
	}
	if !strings.Contains(out, "22.50") {
		t.Errorf("float formatting: %q", out)
	}
}

func TestCommas(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{0, "0"}, {5, "5"}, {999, "999"}, {1000, "1,000"},
		{13789641, "13,789,641"}, {-4321, "-4,321"},
	}
	for _, tt := range tests {
		if got := commas(tt.n); got != tt.want {
			t.Errorf("commas(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestFunnelRender(t *testing.T) {
	out := Funnel(analysis.Funnel{
		IPsScanned: 1000000, OpenPort21: 5900, FTPServers: 3726, AnonServers: 304,
		PctOpen: 0.59, PctFTP: 63.15, PctAnonymous: 8.16,
	})
	for _, want := range []string{"Table I", "1,000,000", "3,726", "8.16% of FTP"} {
		if !strings.Contains(out, want) {
			t.Errorf("funnel output missing %q:\n%s", want, out)
		}
	}
}

func TestClassificationRender(t *testing.T) {
	out := Classification(analysis.Classification{
		Rows: []analysis.CategoryCount{
			{Name: "Generic Server", All: 100, PctAll: 43.2, Anon: 10, PctAnon: 62.6},
		},
		TotalFTP: 231, TotalAnon: 16,
	})
	if !strings.Contains(out, "Generic Server") || !strings.Contains(out, "43.20") {
		t.Errorf("output:\n%s", out)
	}
}

func TestASConcentrationRender(t *testing.T) {
	out := ASConcentration(analysis.ASConcentration{
		ASesForHalfAll:  78,
		ASesForHalfAnon: 42,
		TypeBreakdownAll: map[asdb.Type]int{
			asdb.TypeHosting: 50, asdb.TypeISP: 25, asdb.TypeAcademic: 3,
		},
		TypeBreakdownAnon: map[asdb.Type]int{
			asdb.TypeHosting: 29, asdb.TypeISP: 11, asdb.TypeAcademic: 2,
		},
	})
	for _, want := range []string{"All FTP (78)", "Anonymous FTP (42)", "Hosting", "Academic"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Render(t *testing.T) {
	// Concentrated distribution: first AS holds half of everything.
	cdf := []float64{0.5, 0.65, 0.78, 0.86, 0.92, 0.96, 0.98, 0.99, 0.995, 1.0}
	out := Figure1(analysis.ASConcentration{
		CDFAll: cdf, CDFAnon: cdf[:8], CDFWritable: cdf[:4],
	})
	for _, want := range []string{"Figure 1", "All FTP Servers", "50% at 1 ASes", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRankForShare(t *testing.T) {
	cdf := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if got := rankForShare(cdf, 0.5); got != 3 {
		t.Errorf("rankForShare = %d", got)
	}
	if got := rankForShare(cdf, 1.0); got != 5 {
		t.Errorf("rankForShare(1.0) = %d", got)
	}
	if got := rankForShare(nil, 0.5); got != 0 {
		t.Errorf("rankForShare(nil) = %d", got)
	}
}

func TestRemainingRenderers(t *testing.T) {
	// Smoke-test every renderer for non-empty, panic-free output.
	dev := Devices(analysis.DeviceBreakdown{
		Consumer: []analysis.DeviceCount{{Model: "QNAP Turbo NAS", Found: 57655, Anon: 1637, PctAnon: 2.84}},
		Provider: []analysis.DeviceCount{{Model: "FRITZ!Box DSL modem", Found: 152520, Anon: 49, PctAnon: 0.03}},
		Classes:  []analysis.DeviceCount{{Model: "NAS", Found: 198381, Anon: 18116}},
	})
	if !strings.Contains(dev, "QNAP") || !strings.Contains(dev, "FRITZ!Box") {
		t.Errorf("devices:\n%s", dev)
	}
	top := TopASes([]analysis.TopAS{{Number: 12824, Name: "home.pl S.A.", FTPServers: 136765, AnonServers: 103175, PctAnon: 75.44}})
	if !strings.Contains(top, "AS12824") {
		t.Errorf("top ASes:\n%s", top)
	}
	cves := CVEs(analysis.CVEExposure{Rows: []analysis.CVECount{
		{Implementation: "ProFTPD", ID: "CVE-2015-3306", CVSS: 10, IPs: 300931},
	}, VulnerableIPs: 1, TotalFTP: 2})
	if !strings.Contains(cves, "CVE-2015-3306") {
		t.Errorf("cves:\n%s", cves)
	}
	mal := Malicious(analysis.Malicious{WritableServers: 19437, WritableASes: 3425,
		Campaigns: []analysis.CampaignHit{{Name: "w0000000t write probe", Servers: 5}}})
	if !strings.Contains(mal, "19,437") || !strings.Contains(mal, "w0000000t") {
		t.Errorf("malicious:\n%s", mal)
	}
	pb := PortBounce(analysis.PortBounce{Tested: 100, NotValidated: 12, PctNotValidated: 12.74})
	if !strings.Contains(pb, "12.74") {
		t.Errorf("port bounce:\n%s", pb)
	}
	ftps := FTPS(analysis.FTPS{Supported: 3, TopCerts: []analysis.CertCount{
		{CommonName: "*.home.pl", Servers: 2},
		{CommonName: "localhost", Servers: 1, SelfSigned: true},
	}})
	if !strings.Contains(ftps, "*.home.pl") || !strings.Contains(ftps, "self-signed") {
		t.Errorf("ftps:\n%s", ftps)
	}
	exp := ExposureProse(analysis.Exposure{AnonServers: 10, ExposingServers: 3})
	if !strings.Contains(exp, "30.0%") {
		t.Errorf("exposure:\n%s", exp)
	}
	sens := Sensitive(analysis.Exposure{Sensitive: []analysis.SensitiveClass{
		{Type: "Other", Name: ".pst files", Servers: 2419, Files: 12636},
	}})
	if !strings.Contains(sens, ".pst files") {
		t.Errorf("sensitive:\n%s", sens)
	}
	ext := Extensions(analysis.Exposure{Extensions: []analysis.ExtensionCount{
		{Ext: ".jpg", Files: 15962091, Servers: 10187},
	}}, 10)
	if !strings.Contains(ext, ".jpg") {
		t.Errorf("extensions:\n%s", ext)
	}
	x := ExposureByDevice(analysis.ExposureByDevice{
		Rows:   map[string]map[string]float64{"All": {"NAS": 56.05}},
		Totals: map[string]int{"All": 100},
	})
	if !strings.Contains(x, "56.05%") {
		t.Errorf("exposure by device:\n%s", x)
	}
}

func TestFigure1CSV(t *testing.T) {
	out := Figure1CSV(analysis.ASConcentration{
		CDFAll:      []float64{0.5, 1.0},
		CDFAnon:     []float64{0.7},
		CDFWritable: nil,
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %q", lines)
	}
	if lines[0] != "as_rank,cdf_all,cdf_anonymous,cdf_writable" {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.500000,0.700000,0.000000") {
		t.Errorf("row 1: %q", lines[1])
	}
	// Shorter series saturate at 1 once exhausted.
	if !strings.HasPrefix(lines[2], "2,1.000000,1.000000,") {
		t.Errorf("row 2: %q", lines[2])
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}
