// Package report renders analysis results as aligned text tables and ASCII
// figures, one renderer per table/figure in the paper. The cmd tools and
// benchmark harness share these renderers so EXPERIMENTS.md rows come from
// exactly the code paths under test.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ftpcloud/internal/analysis"
	"ftpcloud/internal/asdb"
)

// Table is a minimal aligned-text table builder.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// Row appends one row; values are stringified with %v.
func (t *Table) Row(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Funnel renders Table I.
func Funnel(f analysis.Funnel) string {
	t := NewTable("Table I — General metrics from FTP enumeration", "Metric", "Count", "Percent")
	t.Row("IPs scanned", commas(int(f.IPsScanned)), "")
	t.Row("Open port 21", commas(f.OpenPort21), fmt.Sprintf("%.2f%% of scanned", f.PctOpen))
	t.Row("FTP servers", commas(f.FTPServers), fmt.Sprintf("%.2f%% of open", f.PctFTP))
	t.Row("Anonymous FTP servers", commas(f.AnonServers), fmt.Sprintf("%.2f%% of FTP", f.PctAnonymous))
	return t.String()
}

// Classification renders Table II.
func Classification(c analysis.Classification) string {
	t := NewTable("Table II — Breakout of servers in each category",
		"Classification", "All FTP", "% All", "Anonymous", "% Anon")
	for _, row := range c.Rows {
		t.Row(row.Name, commas(row.All), row.PctAll, commas(row.Anon), row.PctAnon)
	}
	return t.String()
}

// ASConcentration renders Table III.
func ASConcentration(a analysis.ASConcentration) string {
	t := NewTable("Table III — ASes accounting for 50% of all FTP types",
		"AS Type", fmt.Sprintf("All FTP (%d)", a.ASesForHalfAll),
		fmt.Sprintf("Anonymous FTP (%d)", a.ASesForHalfAnon))
	for _, typ := range []asdb.Type{asdb.TypeHosting, asdb.TypeISP, asdb.TypeAcademic, asdb.TypeOther} {
		if a.TypeBreakdownAll[typ] == 0 && a.TypeBreakdownAnon[typ] == 0 {
			continue
		}
		t.Row(typ.String(), a.TypeBreakdownAll[typ], a.TypeBreakdownAnon[typ])
	}
	return t.String()
}

// Devices renders Tables IV, V and VII.
func Devices(d analysis.DeviceBreakdown) string {
	var b strings.Builder
	t := NewTable("Table IV — Classes of embedded devices", "Device Type", "All FTP", "Anonymous")
	for _, row := range d.Classes {
		t.Row(row.Model, commas(row.Found), commas(row.Anon))
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t = NewTable("Table V — Common provider-deployed devices", "Device", "# Found", "# Anonymous")
	for _, row := range d.Provider {
		t.Row(row.Model, commas(row.Found), fmt.Sprintf("%d (%.2f%%)", row.Anon, row.PctAnon))
	}
	b.WriteString(t.String())
	b.WriteString("\n")

	t = NewTable("Table VII — Consumer embedded devices", "Device", "# Found", "# Anonymous")
	for _, row := range d.Consumer {
		t.Row(row.Model, commas(row.Found), fmt.Sprintf("%d (%.2f%%)", row.Anon, row.PctAnon))
	}
	b.WriteString(t.String())
	return b.String()
}

// TopASes renders Table VI.
func TopASes(rows []analysis.TopAS) string {
	t := NewTable("Table VI — Top ASes by number of anonymous FTP servers",
		"AS", "IPs advertised", "FTP servers", "Anonymous FTP")
	for _, r := range rows {
		t.Row(fmt.Sprintf("AS%d %s", r.Number, r.Name), commas(int(r.IPsAdvertised)),
			commas(r.FTPServers), fmt.Sprintf("%s (%.2f%%)", commas(r.AnonServers), r.PctAnon))
	}
	return t.String()
}

// Extensions renders Table VIII.
func Extensions(e analysis.Exposure, topN int) string {
	t := NewTable("Table VIII — Most common file extensions across known SOHO devices",
		"Extension", "# Files", "# Servers")
	rows := e.Extensions
	if len(rows) > topN {
		rows = rows[:topN]
	}
	for _, r := range rows {
		t.Row(r.Ext, commas(r.Files), commas(r.Servers))
	}
	return t.String()
}

// Sensitive renders Table IX.
func Sensitive(e analysis.Exposure) string {
	t := NewTable("Table IX — Sensitive exposure via anonymous FTP",
		"Type", "File", "# Servers", "# Files", "# Readable", "# Non-readable", "# Unk-readable")
	for _, s := range e.Sensitive {
		t.Row(s.Type, s.Name, commas(s.Servers), commas(s.Files),
			commas(s.Readable), commas(s.NonReadable), commas(s.UnkReadable))
	}
	return t.String()
}

// ExposureProse renders §V's prose statistics.
func ExposureProse(e analysis.Exposure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section V — Over exposure\n")
	fmt.Fprintf(&b, "  anonymous servers:       %s\n", commas(e.AnonServers))
	fmt.Fprintf(&b, "  exposing any data:       %s (%.1f%%)\n", commas(e.ExposingServers),
		pct(e.ExposingServers, e.AnonServers))
	fmt.Fprintf(&b, "  robots.txt seen:         %s (exclude-all: %s)\n",
		commas(e.RobotsSeen), commas(e.RobotsExcludeAll))
	fmt.Fprintf(&b, "  trees over request cap:  %s\n", commas(e.Truncated))
	fmt.Fprintf(&b, "  index.html:              %s files on %s servers\n",
		commas(e.IndexHTMLFiles), commas(e.IndexHTMLServers))
	fmt.Fprintf(&b, "  photos:                  %s (%s readable) on %s servers\n",
		commas(e.PhotoFiles), commas(e.PhotoReadable), commas(e.PhotoServers))
	fmt.Fprintf(&b, "  OS roots:                %s Linux, %s Windows\n",
		commas(e.OSRootLinux), commas(e.OSRootWindows))
	fmt.Fprintf(&b, "  .htaccess:               %s files on %s servers\n",
		commas(e.HtaccessFiles), commas(e.HtaccessServers))
	fmt.Fprintf(&b, "  scripting source:        %s files on %s servers\n",
		commas(e.ScriptFiles), commas(e.ScriptServers))
	return b.String()
}

// ExposureByDevice renders Table X.
func ExposureByDevice(x analysis.ExposureByDevice) string {
	cols := []string{"NAS", "Router", "Other Embedded", "Generic", "Hosting", "Unk"}
	header := append([]string{"Type of Exposure"}, cols...)
	t := NewTable("Table X — Breakout of devices exposing user information", header...)
	order := []string{"Sensitive Documents", "Photo Libraries", "Root File Systems", "Scripting Source", "All"}
	for _, name := range order {
		row, ok := x.Rows[name]
		if !ok {
			continue
		}
		cells := make([]any, 0, len(cols)+1)
		cells = append(cells, name)
		for _, c := range cols {
			cells = append(cells, fmt.Sprintf("%.2f%%", row[c]))
		}
		t.Row(cells...)
	}
	return t.String()
}

// CVEs renders Table XI.
func CVEs(c analysis.CVEExposure) string {
	t := NewTable("Table XI — Number of servers vulnerable to CVEs",
		"Implementation", "Vulnerability", "CVSS", "Number IPs")
	for _, row := range c.Rows {
		t.Row(row.Implementation, row.ID, fmt.Sprintf("%.1f", row.CVSS), commas(row.IPs))
	}
	return t.String() + fmt.Sprintf("Total vulnerable IPs: %s of %s FTP servers\n",
		commas(c.VulnerableIPs), commas(c.TotalFTP))
}

// Malicious renders §VI.
func Malicious(m analysis.Malicious) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI — Malicious use\n")
	fmt.Fprintf(&b, "  world-writable servers:  %s in %s ASes\n", commas(m.WritableServers), commas(m.WritableASes))
	fmt.Fprintf(&b, "  anon-upload confirmed:   %s (RETR refusal evidence)\n", commas(m.AnonUploadConfirmed))
	fmt.Fprintf(&b, "  RAT files/servers:       %s / %s\n", commas(m.RATFiles), commas(m.RATServers))
	fmt.Fprintf(&b, "  DDoS-script servers:     %s\n", commas(m.DDoSServers))
	fmt.Fprintf(&b, "  Holy Bible SEO servers:  %s (%.2f%% with write evidence)\n",
		commas(m.HolyBibleServers), m.HolyBiblePctWritable)
	fmt.Fprintf(&b, "  WaReZ drop servers:      %s\n", commas(m.WaReZServers))
	fmt.Fprintf(&b, "  Ramnit banners:          %s\n", commas(m.RamnitServers))
	fmt.Fprintf(&b, "  FTP+HTTP overlap:        %s (%.2f%%), scripting %s (%.2f%%)\n",
		commas(m.HTTPOverlap), pct(m.HTTPOverlap, m.TotalFTP),
		commas(m.ScriptingOverlap), pct(m.ScriptingOverlap, m.TotalFTP))
	t := NewTable("  Campaigns", "Campaign", "Servers", "Files")
	for _, c := range m.Campaigns {
		t.Row(c.Name, commas(c.Servers), commas(c.Files))
	}
	b.WriteString(t.String())
	return b.String()
}

// PortBounce renders §VII.B.
func PortBounce(p analysis.PortBounce) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VII.B — PORT bouncing\n")
	fmt.Fprintf(&b, "  anonymous servers tested:   %s\n", commas(p.Tested))
	fmt.Fprintf(&b, "  failed PORT validation:     %s (%.2f%%)\n", commas(p.NotValidated), p.PctNotValidated)
	fmt.Fprintf(&b, "  share in AS12824 home.pl:   %.1f%%\n", p.HomePLShare)
	fmt.Fprintf(&b, "  NAT-ed servers (PASV leak): %s, of which %s fail validation\n",
		commas(p.NATed), commas(p.NATedNotValidated))
	fmt.Fprintf(&b, "  writable AND unvalidated:   %s\n", commas(p.WritableNotValidated))
	fmt.Fprintf(&b, "  FileZilla servers seen:     %s\n", commas(p.FileZillaServers))
	return b.String()
}

// FTPS renders §IX with Tables XII and XIII.
func FTPS(f analysis.FTPS) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section IX — FTPS impact\n")
	fmt.Fprintf(&b, "  support AUTH TLS:        %s (%.2f%% of FTP servers)\n", commas(f.Supported), f.PctSupported)
	fmt.Fprintf(&b, "  require TLS pre-login:   %s\n", commas(f.RequirePreLogin))
	fmt.Fprintf(&b, "  unique certificates:     %s across %s FTPS servers\n", commas(f.UniqueCerts), commas(f.Supported))
	fmt.Fprintf(&b, "  self-signed:             %s (%.2f%%)\n", commas(f.SelfSigned), f.PctSelfSigned)
	t := NewTable("Table XII — Top most common FTPS certificates",
		"Certificate CN", "# Servers", "Browser-trusted?")
	for _, c := range f.TopCerts {
		trusted := "Yes"
		if c.SelfSigned {
			trusted = "No - self-signed"
		}
		t.Row(c.CommonName, commas(c.Servers), trusted)
	}
	b.WriteString(t.String())
	t = NewTable("Table XIII — Devices that share FTPS certificates",
		"Device", "Certificate CN", "# Found")
	for _, d := range f.DeviceCerts {
		t.Row(d.Device, d.CommonName, commas(d.Servers))
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure1 renders the AS-concentration CDF as an ASCII plot with a
// logarithmic x axis, mirroring the paper's Figure 1.
func Figure1(a analysis.ASConcentration) string {
	var b strings.Builder
	b.WriteString("Figure 1 — Distribution of FTP servers by AS (CDF, log-x)\n")
	series := []struct {
		name string
		cdf  []float64
	}{
		{"All FTP Servers", a.CDFAll},
		{"Anonymous FTP Servers", a.CDFAnon},
		{"Writable FTP Servers", a.CDFWritable},
	}
	for _, s := range series {
		fmt.Fprintf(&b, "  %-24s", s.name+":")
		if len(s.cdf) == 0 {
			b.WriteString(" (no data)\n")
			continue
		}
		// Sample at log-spaced AS ranks.
		for _, frac := range []float64{0.5} {
			rank := rankForShare(s.cdf, frac)
			fmt.Fprintf(&b, " 50%% at %d ASes,", rank)
		}
		fmt.Fprintf(&b, " 100%% at %d ASes\n", len(s.cdf))
	}
	b.WriteString(plotCDF(series[0].cdf, series[1].cdf, series[2].cdf))
	return b.String()
}

// rankForShare finds the first rank whose CDF value reaches the share.
func rankForShare(cdf []float64, share float64) int {
	for i, v := range cdf {
		if v >= share {
			return i + 1
		}
	}
	return len(cdf)
}

// plotCDF draws a compact ASCII chart: rows are CDF levels, columns are
// log-spaced AS ranks; each cell shows which series have crossed.
func plotCDF(all, anon, writable []float64) string {
	const width = 48
	maxRank := len(all)
	if len(anon) > maxRank {
		maxRank = len(anon)
	}
	if len(writable) > maxRank {
		maxRank = len(writable)
	}
	if maxRank < 2 {
		return ""
	}
	var b strings.Builder
	ranks := make([]int, width)
	for i := range ranks {
		// Log-spaced ranks from 1 to maxRank.
		ranks[i] = int(math.Round(math.Pow(float64(maxRank), float64(i)/float64(width-1))))
		if ranks[i] < 1 {
			ranks[i] = 1
		}
	}
	at := func(cdf []float64, rank int) float64 {
		if len(cdf) == 0 {
			return 0
		}
		if rank > len(cdf) {
			rank = len(cdf)
		}
		return cdf[rank-1]
	}
	for level := 10; level >= 1; level-- {
		threshold := float64(level) / 10
		fmt.Fprintf(&b, "  %4.1f |", threshold)
		for _, rank := range ranks {
			ch := byte(' ')
			switch {
			case at(writable, rank) >= threshold:
				ch = 'W'
			case at(anon, rank) >= threshold:
				ch = 'a'
			case at(all, rank) >= threshold:
				ch = '.'
			}
			b.WriteByte(ch)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        1%sASes (log) %d\n", strings.Repeat(" ", width-16), maxRank)
	fmt.Fprintf(&b, "        legend: . all   a anonymous   W writable\n")
	return b.String()
}

// Figure1CSV exports the Figure 1 CDF series as CSV (rank, all, anonymous,
// writable) for external plotting.
func Figure1CSV(a analysis.ASConcentration) string {
	var b strings.Builder
	b.WriteString("as_rank,cdf_all,cdf_anonymous,cdf_writable\n")
	maxLen := len(a.CDFAll)
	if len(a.CDFAnon) > maxLen {
		maxLen = len(a.CDFAnon)
	}
	if len(a.CDFWritable) > maxLen {
		maxLen = len(a.CDFWritable)
	}
	at := func(cdf []float64, i int) float64 {
		switch {
		case len(cdf) == 0:
			return 0
		case i >= len(cdf):
			return 1
		default:
			return cdf[i]
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%.6f\n",
			i+1, at(a.CDFAll, i), at(a.CDFAnon, i), at(a.CDFWritable, i))
	}
	return b.String()
}

// commas formats an integer with thousands separators.
func commas(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// SortedKeys is a small helper for deterministic map iteration in reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
