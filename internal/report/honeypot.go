package report

import (
	"fmt"
	"strings"
	"time"

	"ftpcloud/internal/honeypot"
)

// Timelines renders the Honeybuckets-style per-lure interaction timelines:
// how quickly each bait posture drew its first probe and how much traffic it
// attracted.
func Timelines(rows []honeypot.LureTimeline) string {
	t := NewTable("Honeypot fleet — time to first probe by lure strategy",
		"Lure", "Honeypots", "Probed", "Sessions", "TTF min", "TTF median", "TTF p90", "TTF max")
	for _, r := range rows {
		t.Row(string(r.Lure), r.Honeypots, r.Probed, commas(r.Sessions),
			dur(r.TTFMin), dur(r.TTFMedian), dur(r.TTFP90), dur(r.TTFMax))
	}
	return t.String()
}

// CredClusters renders credential-reuse clustering across the bot
// population: pairs tried from two or more distinct sources mark shared
// dictionaries walking the fleet.
func CredClusters(c honeypot.CredClusters) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Honeypot fleet — credential reuse\n")
	fmt.Fprintf(&b, "  unique pairs tried:      %s\n", commas(c.UniquePairs))
	fmt.Fprintf(&b, "  reused across sources:   %s\n", commas(c.ReusedPairs))
	t := NewTable("  Most widely shared pairs", "Pair", "Sources", "Tries")
	for _, cl := range c.Top {
		t.Row(cl.Pair, cl.Sources, commas(cl.Tries))
	}
	b.WriteString(t.String())
	return b.String()
}

// Attribution renders the campaign attribution table: which cataloged
// campaigns (plus protocol-level exploits and relay abuse) the fleet
// observed, and from how many distinct sources.
func Attribution(rows []honeypot.CampaignRow) string {
	t := NewTable("Honeypot fleet — campaign attribution", "Campaign", "Events", "Sources")
	for _, r := range rows {
		t.Row(r.Key, commas(r.Events), commas(r.Sources))
	}
	return t.String()
}

// Honeypot renders the full streamed study: the §VIII summary followed by
// the fleet-scale analyses.
func Honeypot(r honeypot.Report) string {
	var b strings.Builder
	b.WriteString(honeypot.Render(r.Summary))
	fmt.Fprintf(&b, "  events / sessions:        %s / %s\n",
		commas(int(r.Events)), commas(int(r.Sessions)))
	b.WriteString("\n")
	b.WriteString(Timelines(r.Timelines))
	b.WriteString("\n")
	b.WriteString(CredClusters(r.Creds))
	b.WriteString("\n")
	b.WriteString(Attribution(r.Attribution))
	return b.String()
}

// dur formats a duration compactly for timeline tables.
func dur(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
