package report

import (
	"fmt"
	"unicode/utf8"

	"ftpcloud/internal/analysis"
)

// UnexpectedServices renders the identification ledger — the endpoints the
// staged discovery funnel shed before enumeration, by sniffed protocol. The
// section only appears on runs with the identification stage enabled, so it
// rides outside the paper-table Render and never perturbs those bytes.
func UnexpectedServices(u analysis.UnexpectedServices) string {
	t := NewTable(fmt.Sprintf("Unexpected services — %s endpoints shed before enumeration", commas(u.Total)),
		"Protocol", "Count", "% Shed", "Sample First Response")
	for _, s := range u.Services {
		t.Row(s.Protocol, commas(s.Count), fmt.Sprintf("%.2f%%", s.PctShed), sampleBanner(s.SampleBanner))
	}
	return t.String()
}

// sampleBanner renders a first-response sample printably: quoted, with
// non-text bytes escaped, clipped so garbage cannot blow out the table.
// The clip applies to the rendered form — 32 high bytes escape to ~128
// columns, so clipping raw bytes alone would not keep the table narrow.
func sampleBanner(b string) string {
	const clip = 48
	q := fmt.Sprintf("%q", b)
	if len(q) > clip {
		// Cut at a rune boundary so a multi-byte escape's UTF-8 rendering
		// is never split mid-character.
		cut := clip
		for cut > 0 && !utf8.RuneStart(q[cut]) {
			cut--
		}
		q = q[:cut] + `"...`
	}
	return q
}
